(** The pulse-generation backend interface.

    Both AccQOC and PAQOC consume pulse generation through this one
    interface; the engine behind it is either the analytic
    {!Latency_model} (fast, used for the big sweeps) or the real
    {!Grape}+{!Duration_search} QOC stack (used for Fig 2, Table II, tests
    and examples). The generator also owns the paper's pulse database: a
    lookup table keyed on the canonical form of a gate group (so permuted-
    qubit repeats hit the cache) plus a shape-signature index that
    warm-starts GRAPE from a similar previously generated pulse, AccQOC
    style.

    The database is concurrency-safe: every entry point that touches the
    tables or the accounting takes the generator's internal mutex, so any
    number of domains may share one generator. Batches of independent
    groups go through {!generate_batch}, which synthesises on a {!Pool} of
    worker domains while guaranteeing the serial result. *)

(** A gate group over local wires [0 .. n_qubits-1] — the unit of pulse
    generation (a customized gate, an APA gate, or a single basis gate). *)
type group = { n_qubits : int; gates : Paqoc_circuit.Gate.app list }

(** [group_of_apps apps] renames the global qubits touched by [apps] into
    local first-appearance order, returning the canonical group and the
    global qubits in local-wire order. *)
val group_of_apps : Paqoc_circuit.Gate.app list -> group * int list

(** [key g] is the canonical cache key of a group (stable under qubit
    permutation thanks to {!group_of_apps} relabeling). *)
val key : group -> string

(** [shape_signature g] ignores rotation angles — groups with equal shapes
    are "similar" and share GRAPE initial guesses. *)
val shape_signature : group -> string

(** How an outcome was obtained: [Synthesized] is the normal QOC (or
    model) path; [Fallback] means every synthesis attempt failed and the
    group was priced from its decomposed default-basis calibration pulses
    instead — a schedule always exists, at a latency penalty. The concrete
    type lives in {!Db_format} (persistence shares it with {!Cache}). *)
type provenance = Db_format.provenance = Synthesized | Fallback

val provenance_name : provenance -> string

type outcome = {
  latency : float;  (** pulse duration in device dt *)
  error : float;  (** per-group infidelity [ε] (for ESP) *)
  gen_seconds : float;  (** QOC cost charged for this request, including
                            the cost of any failed attempts *)
  cache_hit : bool;
  seeded : bool;  (** warm-started from a similar pulse *)
  fidelity : float;  (** achieved gate fidelity *)
  pulse : Pulse.t option;  (** concrete waveform (QOC backend only) *)
  provenance : provenance;
  attempts : int;  (** synthesis attempts spent (0 for cache/db entries) *)
}

type backend =
  | Model of Latency_model.config
      (** analytic engine; no waveforms, instant *)
  | Qoc of Duration_search.config * Latency_model.config
      (** real GRAPE; the model config prices search bounds *)

(** [hamiltonian_of g] is the control problem a QOC backend solves for
    group [g]: X/Y drives on every wire plus one exchange control per pair
    of wires that some (flattened) two-or-more-qubit gate of [g] couples.
    Exposed so the simulator propagates pulses under the exact Hamiltonian
    they were optimised against. Equivalent to
    [hamiltonian_for ~device:Paqoc_topology.Device.lattice]. *)
val hamiltonian_of : group -> Hamiltonian.t

(** [hamiltonian_for ~device g] is {!hamiltonian_of} calibrated to a
    registry device: the exchange controls are bounded by the device's
    {!Paqoc_topology.Device.synthesis_mu} and the X/Y drives by its
    {!Paqoc_topology.Device.drive_bound}. This is the Hamiltonian a
    generator with [set_device] applied synthesises against. *)
val hamiltonian_for : device:Paqoc_topology.Device.t -> group -> Hamiltonian.t

(** Per-task resilience policy. A failing synthesis is retried up to
    [max_attempts - 1] more times with deterministically perturbed restarts
    (re-seeded GRAPE; jittered, then dropped, warm start), then degrades to
    the decomposed-basis fallback. [iter_budget > 0] caps each attempt's
    total GRAPE iterations; [task_seconds] bounds a whole task's wall
    clock (attempts past the deadline are skipped straight to fallback).
    Identical policies give identical results at any [jobs] count. *)
type retry = {
  max_attempts : int;  (** >= 1; 1 = no retries *)
  jitter_seed : int;  (** seeds the restart perturbations *)
  iter_budget : int;  (** per-attempt GRAPE iteration cap; 0 = config's *)
  task_seconds : float option;  (** per-task wall-clock budget *)
}

(** [{ max_attempts = 3; jitter_seed = 0x5eed; iter_budget = 0;
      task_seconds = None }] *)
val default_retry : retry

type t

(** [create backend] is a fresh generator. [shared] attaches a cross-run
    {!Cache} from the start (equivalent to {!set_shared_cache} right
    after creation).
    @raise Invalid_argument when [retry.max_attempts < 1]. *)
val create : ?retry:retry -> ?shared:Cache.t -> backend -> t

(** [model_default ()] is a generator over {!Latency_model.default}. *)
val model_default : ?retry:retry -> unit -> t

(** [qoc_default ()] is a real-GRAPE generator with bench-friendly search
    settings. *)
val qoc_default : ?retry:retry -> unit -> t

(** The resilience policy [t] was created with. *)
val retry_policy : t -> retry

(** [pricing_is_analytic t] is [true] on the {!Model} backend, where
    pricing a group is a closed-form evaluation (microseconds) rather
    than a GRAPE run (seconds). Callers deciding whether a pricing batch
    is worth dispatching onto a {!Pool} should check this: parallel
    dispatch of analytic pricing costs more than it saves, and the
    spawned worker domains tax every subsequent minor collection. *)
val pricing_is_analytic : t -> bool

(** {1 The shared cross-run cache}

    A generator may be attached to a {!Cache} shared by any number of
    compilations (and, through its journal file, by past and future
    runs). The consult order is: this generator's own tables first, then
    the shared cache — a shared hit is imported into the local tables
    (as {!load_database} would have) and skips synthesis entirely,
    counting one [cache.hit]; a local synthesis publishes its priced
    entry and shape signature back (fallback outcomes are never
    published — a degraded run must not poison the shared cache). A
    failed publish (e.g. a journal-append I/O error) degrades
    persistence only: it counts [cache.publish_error] and the compile
    proceeds. *)

(** [set_shared_cache t c] attaches ([Some]) or detaches ([None]) the
    shared cache consulted by subsequent generations. *)
val set_shared_cache : t -> Cache.t option -> unit

val shared_cache : t -> Cache.t option

(** {1 Devices}

    A generator synthesises for exactly one calibrated device
    ({!Paqoc_topology.Device}), default {!Paqoc_topology.Device.lattice}
    — the paper's 5x5 uniform lattice, whose behaviour (Hamiltonian
    bounds, cache keys and bytes) is identical to the pre-registry code.
    For any other device, every QOC Hamiltonian is built from the
    device's calibrated [synthesis_mu]/[drive_bound], and every shared-
    cache key (entries, shapes, class records) is prefixed with the
    device's ["dev:<hash>|"] namespace
    ({!Paqoc_topology.Device.cache_namespace}) so pulses never leak
    across devices — including across {!Paqoc_topology.Drift} epochs of
    the same device, whose hashes differ. *)

(** [set_device t d] selects the device subsequent generations
    synthesise for. Must not race an in-flight {!generate_batch}. *)
val set_device : t -> Paqoc_topology.Device.t -> unit

val device : t -> Paqoc_topology.Device.t

(** {1 Canonicalization (equivalence-class replay)}

    With {!set_canonical} on and a shared cache attached, the shared
    consult becomes {!Cache.find_canonical}'s two-tier lookup: the exact
    key first and, on miss, the group's {!Paqoc_canon.Canon.class_key} —
    groups whose unitaries differ only by single-qubit local rotations
    (and global phase) replay the class representative's pulse instead
    of synthesising. A class-tier hit is accepted only after
    {!Paqoc_canon.Canon.relate} reconstructs and verifies the
    local-frame correction; it imports the representative's price under
    the requester's key (latency and trace fidelity are local-frame
    invariants) and counts [cache.canonical_hit] on top of [cache.hit].
    Synthesised pulses additionally publish their class record
    ({!Cache.publish_class}). With canonicalization off (the default)
    the consult, its counters and every byte the cache persists are
    identical to the exact-only path. See [docs/canonicalization.md]. *)

(** [set_canonical t b] enables/disables the equivalence-class tier for
    subsequent generations. *)
val set_canonical : t -> bool -> unit

val canonical_enabled : t -> bool

(** A class-tier replay taken by this generator, recorded for audit:
    [correction_l . U_rep . correction_r = U_target] up to global phase,
    verified to {!Paqoc_canon.Canon.verify_tol} in max norm at plan
    time. [rep_pulse] is the representative's waveform when this run
    synthesised it (the persistent cache stores no waveforms). *)
type replay = {
  rep_key : string;  (** exact key whose pulse was borrowed *)
  correction_l : Paqoc_linalg.Cmat.t;  (** left local correction *)
  correction_r : Paqoc_linalg.Cmat.t;  (** right local correction *)
  rep_pulse : Pulse.t option;
  target : Paqoc_linalg.Cmat.t;  (** the requesting group's unitary *)
}

(** [canonical_replays t] lists every class-tier hit taken since
    creation, as [(requesting key, replay)], sorted by key. *)
val canonical_replays : t -> (string * replay) list

(** [generate t g] prices (and, on the QOC backend, synthesises) the pulse
    for group [g], consulting and updating the pulse database. Atomic:
    the whole call holds the generator's mutex, so concurrent callers
    never synthesise the same group twice. *)
val generate : t -> group -> outcome

(** [generate_batch ~jobs t groups] generates every group of the batch,
    fanning independent syntheses out across [jobs] worker domains
    (default 1 = fully serial, equivalent to [List.map (generate t)]).

    {b Determinism guarantee}: the batch is planned up front by replaying
    the serial loop's warm-start decisions over keys and shape signatures
    (both known before any synthesis), so every task is seeded by exactly
    the provider the serial run would have used; outcomes are committed to
    the database in input order. A run with [jobs = 4] therefore produces
    the same outcomes, the same priced entries and latencies, the same
    accounting (up to QOC wall-clock seconds) and a byte-identical
    {!save_database} file as the serial run — [jobs] only changes
    wall-clock time. The guarantee assumes no concurrent mutation of [t]
    while the batch is in flight (concurrent use stays memory-safe, only
    the serial-equivalence claim is void). *)
val generate_batch : ?jobs:int -> t -> group list -> outcome list

(** [peek t g] consults the pulse database without generating anything and
    without touching the accounting; [None] when [g]'s pulse has not been
    generated yet. The criticality search schedules with
    [peek]-or-{!estimate_latency} so that, per Algorithm 1, QOC runs only
    for committed merges. *)
val peek : t -> group -> outcome option

(** [estimate_latency t g] is a free model-based latency estimate — the
    quantity the criticality search uses when Observations 1/2 let it skip
    pulse generation. Never touches the cache or the cost accounting. *)
val estimate_latency : t -> group -> float

(** [avg_latency_for_size t nq] is the corpus-average merged latency for an
    [nq]-qubit customized gate (the paper's Observation-2 estimate for
    size-growing merges). Free, like {!estimate_latency}. *)
val avg_latency_for_size : t -> int -> float

(** {1 Priced-latency memo}

    The criticality search re-prices every gate of the circuit on every
    analysis pass as [peek]-or-{!estimate_latency}. On a warm run that
    is pure waste: the database rows never change mid-pass, yet each
    price pays a canonical-key serialisation plus a table round-trip.
    The generator therefore keeps a write-through memo from canonical
    key to that peek-or-estimate value: every write to the pulse
    database refreshes the memo entry in the same critical section, so
    a memo hit is always exactly what [peek]-or-[estimate_latency]
    would return, without touching the tables. *)

(** [priced_latency t g] is the latency {!peek} would report for [g] if
    its pulse is in the database, and {!estimate_latency}'s figure
    otherwise — served from the memo when possible. Never synthesises;
    never touches the hit/generated accounting. *)
val priced_latency : t -> group -> float

(** [priced_latency_of_key t k] reads the memo directly for a canonical
    key obtained earlier from {!key} — no group serialisation at all.
    [None] only when [k] has never been priced through
    {!priced_latency} or written to the database. *)
val priced_latency_of_key : t -> string -> float option

(** [price_epoch t] counts pulse-database writes since creation. A
    caller holding interned keys may cache priced latencies as long as
    the epoch is unchanged, skipping even the memo lookup. *)
val price_epoch : t -> int

(** Priced-latency requests that missed the memo and had to do real
    work since creation (unit-test hook for the memo's effectiveness;
    not reset by {!reset_accounting}). *)
val price_misses : t -> int

(** {1 Accounting} *)

val total_seconds : t -> float

(** [(cold, prefix, shape, similar)] counts of generation warm-start
    classes since creation (diagnostics). *)
val seed_breakdown : t -> int * int * int * int
val pulses_generated : t -> int
val cache_hits : t -> int

(** Groups that degraded to the decomposed-basis fallback since creation
    (or the last {!reset_accounting}). *)
val fallbacks : t -> int

(** [reset_accounting t] zeroes counters (seconds, generated, hits,
    fallbacks) but keeps the pulse database (the paper's offline/online
    split: APA pulses generated offline stay available to later
    compilations at lookup cost). *)
val reset_accounting : t -> unit

(** {1 Persistence}

    The offline component of the paper persists its pulse table across
    compilations. [save_database] writes the priced entries (canonical
    key, latency, error, fidelity, provenance) and the known shape
    signatures as a line-oriented text file; [load_database] merges such a
    file into a generator so subsequent compiles hit the table. Waveforms
    are not persisted — a QOC backend regenerates them on demand
    (warm-started, since the shapes are known). Files are written in
    sorted key order, so the bytes are a canonical function of the
    database contents. The current snapshot format is
    ["paqoc-pulse-db v2"]; [load_database] also accepts v1 files (no
    provenance token) and the journaled ["paqoc-pulse-db v3"] files the
    shared {!Cache} maintains. See {!Db_format} for the byte-level
    specification. *)

(** @raise Failure on an I/O error (including an armed
    {!Faultin.Db_save_error}); the target file is never left truncated. *)
val save_database : t -> string -> unit

(** @raise Failure on a malformed file. *)
val load_database : t -> string -> unit

(** Number of priced entries currently in the database. *)
val database_size : t -> int
