(** The daemon wire protocol: framing, JSON, typed messages.

    [paqoc serve] turns the compiler into a resident service so the
    shared pulse {!Cache} stays hot in one process while any number of
    thin front-ends connect. This module is the contract between the two
    sides: a tiny self-contained JSON codec (the repo deliberately has
    no JSON dependency), a length-prefixed frame layer over a stream
    socket, and the typed request/response messages with their codecs —
    everything except the sockets and threads, which live in {!Server}.

    {b Frame format} (see [docs/daemon.md] for the byte-level spec):
    every message is one frame — a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON. Frames longer than
    {!max_frame_bytes} are rejected before any allocation proportional
    to the claimed length, so a garbage header cannot make the daemon
    allocate gigabytes.

    The codec is total in both directions: any [request]/[response]
    round-trips through its JSON, and any byte string either decodes or
    yields a typed [Error] — malformed input is a value, not an
    exception, so one bad client frame can never kill the daemon. *)

(** {1 JSON} *)

(** A JSON value. Numbers are floats (the wire format of every numeric
    field here); integers round-trip exactly up to 2{^53}. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** [json_to_string j] prints compact JSON (no whitespace), escaping
    control characters, quotes and backslashes per RFC 8259. *)
val json_to_string : json -> string

(** [json_of_string s] parses one JSON value (surrounding whitespace
    allowed; trailing garbage is an error). *)
val json_of_string : string -> (json, string) result

(** {1 Frames} *)

(** Hard cap on a frame payload (16 MiB) — an admission bound, not a
    tuning knob. *)
val max_frame_bytes : int

(** Raised by the frame layer on a malformed or truncated frame (bad
    length header, oversized claim, EOF mid-payload). Connection-fatal;
    daemon-harmless. *)
exception Frame_error of string

(** [write_frame fd payload] writes one complete frame (header +
    payload), looping over short writes.
    @raise Frame_error when [payload] exceeds {!max_frame_bytes}.
    @raise Unix.Unix_error on I/O failure. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one complete frame payload; [None] on a clean
    EOF at a frame boundary (the peer closed between messages).
    @raise Frame_error on a truncated or oversized frame.
    @raise Unix.Unix_error on I/O failure. *)
val read_frame : Unix.file_descr -> string option

(** {1 Messages} *)

(** The circuit of a compile request: a built-in Table I benchmark by
    name, or inline OpenQASM 2.0 source (the client ships file contents;
    the daemon never touches client paths). *)
type circuit = Benchmark of string | Qasm of string

type scheme = M0 | Mtuned | Minf | Acc3 | Acc5
type search = Incremental | Reference
type backend = Model | Qoc

val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option
val search_name : search -> string
val backend_name : backend -> string

type compile_request = {
  circuit : circuit;
  scheme : scheme;
  search : search;
  backend : backend;
  rows : int;  (** device grid rows *)
  cols : int;  (** device grid cols *)
  max_n : int;  (** the paper's maxN *)
  top_k : int;  (** the paper's topK *)
  jobs : int;  (** worker domains {e inside} this one compile (>= 1) *)
  canonical : bool;
      (** enable the shared cache's equivalence-class tier
          ([--canonical-cache]); serialised only when [true], so frames
          to daemons predating the field are unchanged *)
  device : string option;
      (** registry device name ([--device lattice] etc.,
          {!Paqoc_topology.Device.find}); [None] compiles on the plain
          rows x cols grid. Serialised only when present, so frames to
          daemons predating the registry are unchanged. *)
  drift_seed : int;  (** calibration-drift seed ([--drift-seed]) *)
  drift_epoch : int;
      (** calibration-drift epoch ([--drift-epoch], 0 = pristine);
          seed and epoch are serialised only when non-zero *)
  deadline_s : float option;
      (** per-request budget in seconds, measured from admission; spent
          queueing counts. [None] uses the server's default. *)
}

(** A compile request with the CLI's defaults ([bv] on the paper's 5x5
    grid, paqoc-m0, incremental search, model backend, maxN 3, topK 1,
    jobs 1, canonicalization off, no deadline) — override fields as
    needed. *)
val default_compile : compile_request

(** A variational sweep request for the daemon's parametric fast path:
    the client ships {e every} iteration's parameter bindings up front
    (one object per iteration), the daemon freezes — or reuses, keyed on
    circuit/grid/backend/anchors — a {!Paqoc.Variational} compile plan
    and answers with one {!sweep_iteration} row per binding vector.
    Fields are [rc_]-prefixed to keep them distinct from
    {!compile_request}'s. *)
type recompile_request = {
  rc_circuit : circuit;
      (** a sweep benchmark name ([qaoa] / [vqe] / [dnn]) or inline QASM
          (which, having no symbolic angles, degenerates to all-static
          slots) *)
  rc_backend : backend;
  rc_rows : int;
  rc_cols : int;
  rc_jobs : int;  (** worker domains for the freeze's anchor batch *)
  rc_anchors : int;  (** seeded anchor grid size (>= 2) *)
  rc_interp_tol : float;  (** max |predicted - resimulated| drift *)
  rc_angles : (string * float) list list;  (** one binding list per iteration *)
  rc_device : string option;  (** registry device name; [None] = grid *)
  rc_drift_seed : int;
  rc_drift_epoch : int;
  rc_deadline_s : float option;
}

(** A recompile request with the CLI's defaults ([qaoa] on the paper's
    5x5 grid, model backend, 5 anchors, 1e-6 drift tolerance, no
    iterations, no deadline) — override fields as needed. *)
val default_recompile : recompile_request

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of compile_request
  | Recompile of recompile_request

(** Everything the CLI prints about one compile, so the client-side
    output can be byte-identical to the in-process path. *)
type compile_result = {
  latency : float;
  esp : float;
  compile_seconds : float;
  episodes : int;
  fallbacks : int;
  synthesized : int;  (** pulses generated for this request *)
  cache_hits : int;  (** shared-cache hits during this request *)
  cache_misses : int;
  logical_qubits : int;
  device_qubits : int;
  physical_gates : int;
  swaps_added : int;
}

type server_stats = {
  served : int;  (** compile requests answered with a result *)
  rejected_overload : int;
  rejected_deadline : int;
  errors : int;  (** bad requests + internal errors *)
  inflight : int;  (** queued or running right now *)
  cache_entries : int;
  srv_cache_hits : int;  (** lifetime, whole cache *)
  srv_cache_misses : int;
  uptime_s : float;
}

(** One sweep iteration's price and fast-path accounting, mirroring
    [Paqoc.Variational.iteration] minus the waveform-level detail (the
    wire carries prices, not pulses). *)
type sweep_iteration = {
  it_latency : float;
  it_esp : float;
  it_interp : int;  (** slots served by the anchor table / interpolation *)
  it_fallback : int;  (** slots that fell back to real synthesis *)
  it_resynth : int;  (** multi-parameter slots, resynthesised by design *)
}

(** Everything the CLI prints about one sweep: the frozen plan's shape
    plus one row per iteration, so the [--connect] table can be
    byte-identical to the in-process one. *)
type sweep_result = {
  sweep_params : string list;  (** the plan's free parameters, sorted *)
  static_slots : int;
  param_slots : int;
  multi_slots : int;
  anchor_values : float list;  (** the seeded anchor grid *)
  iterations : sweep_iteration list;  (** in request order *)
}

(** Typed refusals. [Overloaded] and [Deadline_exceeded] are the
    admission-control outcomes a well-behaved client retries or sheds;
    [Bad_request] and [Internal] carry a diagnostic message;
    [Shutting_down] means the daemon is draining and will not admit new
    work. *)
type error_kind =
  | Overloaded
  | Deadline_exceeded
  | Bad_request of string
  | Shutting_down
  | Internal of string

val error_name : error_kind -> string

type response =
  | Pong
  | Stats_reply of server_stats
  | Shutdown_ack
  | Result of compile_result
  | Sweep of sweep_result
  | Refused of error_kind

(** The typed per-request deadline signal: raised by deadline-aware
    pipeline stages ({!Paqoc}[.compile ~deadline]) and by the server's
    dispatch when a request's budget expires while queued; {!Server}
    maps it to the [deadline_exceeded] wire error. *)
exception Deadline_exceeded

(** {1 Codecs} *)

val request_to_json : request -> json
val request_of_json : json -> (request, string) result
val response_to_json : response -> json
val response_of_json : json -> (response, string) result

(** [write_request fd r] / [read_response fd] — one framed message each
    way, composing the codec with the frame layer. [read_response]
    raises {!Frame_error} on EOF mid-conversation ([None] would mean the
    daemon hung up without answering). *)
val write_request : Unix.file_descr -> request -> unit

val read_response : Unix.file_descr -> (response, string) result
val write_response : Unix.file_descr -> response -> unit
