(* Process-global metrics and tracing.

   Design constraints, in order:

   1. zero cost when disabled — every instrumentation point is a single
      [Atomic.get] on the enabled flag before doing anything else;
   2. no cross-domain contention when enabled — each domain records into
      its own buffer (reached through [Domain.DLS]), and buffers are only
      merged at report time;
   3. deterministic report *structure* — every map in the JSON output is
      sorted by name, so tests can make golden assertions on reports whose
      values (durations) are not reproducible.

   Buffers are registered in a global list so that events recorded by
   worker domains survive the domain's death (pool workers are joined
   before anything is reported). [reset]/[enable] bump a generation
   counter instead of mutating foreign buffers: a domain that still holds
   a buffer from an earlier generation lazily replaces it on its next
   recording, which keeps reset safe without stopping the world. Reports
   and resets are meant to be taken at quiescent points (no instrumented
   work in flight); concurrent use stays memory-safe but a report may miss
   events still being appended. *)

type span = {
  sp_name : string;
  sp_depth : int;
  sp_start : float;  (* seconds since the enable() epoch *)
  sp_dur : float;
  sp_dom : int;
}

type hist = {
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type gauge = {
  mutable g_last : float;
  mutable g_max : float;
  mutable g_seq : int;  (* global sequence of the last set, for merging *)
}

type buffer = {
  b_gen : int;
  b_dom : int;
  mutable b_spans : span list;  (* completed spans, reverse order *)
  mutable b_depth : int;  (* current span nesting in this domain *)
  b_counters : (string, int ref) Hashtbl.t;
  b_gauges : (string, gauge) Hashtbl.t;
  b_hists : (string, hist) Hashtbl.t;
}

let on = Atomic.make false
let generation = Atomic.make 0
let gauge_seq = Atomic.make 0
let epoch = Atomic.make 0.0
let registry_m = Mutex.create ()
let registry : buffer list ref = ref []

let fresh_buffer () =
  let b =
    { b_gen = Atomic.get generation;
      b_dom = (Domain.self () :> int);
      b_spans = [];
      b_depth = 0;
      b_counters = Hashtbl.create 16;
      b_gauges = Hashtbl.create 8;
      b_hists = Hashtbl.create 8
    }
  in
  Mutex.lock registry_m;
  registry := b :: !registry;
  Mutex.unlock registry_m;
  b

let dls_key : buffer Domain.DLS.key = Domain.DLS.new_key fresh_buffer

(* The calling domain's buffer for the current generation. *)
let buf () =
  let b = Domain.DLS.get dls_key in
  if b.b_gen = Atomic.get generation then b
  else begin
    let b = fresh_buffer () in
    Domain.DLS.set dls_key b;
    b
  end

let enabled () = Atomic.get on

let reset () =
  Atomic.set on false;
  Atomic.incr generation;
  Mutex.lock registry_m;
  registry := [];
  Mutex.unlock registry_m;
  Atomic.set epoch (Clock.now_s ())

let enable () =
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let b = buf () in
    let depth = b.b_depth in
    b.b_depth <- depth + 1;
    let start = Clock.now_s () -. Atomic.get epoch in
    Fun.protect
      ~finally:(fun () ->
        let stop = Clock.now_s () -. Atomic.get epoch in
        b.b_depth <- depth;
        b.b_spans <-
          { sp_name = name;
            sp_depth = depth;
            sp_start = start;
            sp_dur = stop -. start;
            sp_dom = b.b_dom
          }
          :: b.b_spans)
      f
  end

let count ?(n = 1) name =
  if Atomic.get on then begin
    let b = buf () in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.b_counters name (ref n)
  end

let gauge name v =
  if Atomic.get on then begin
    let b = buf () in
    let seq = Atomic.fetch_and_add gauge_seq 1 in
    match Hashtbl.find_opt b.b_gauges name with
    | Some g ->
      g.g_last <- v;
      g.g_max <- Float.max g.g_max v;
      g.g_seq <- seq
    | None ->
      Hashtbl.replace b.b_gauges name { g_last = v; g_max = v; g_seq = seq }
  end

let observe name v =
  if Atomic.get on then begin
    let b = buf () in
    match Hashtbl.find_opt b.b_hists name with
    | Some h ->
      h.h_n <- h.h_n + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_min <- Float.min h.h_min v;
      h.h_max <- Float.max h.h_max v
    | None ->
      Hashtbl.replace b.b_hists name { h_n = 1; h_sum = v; h_min = v; h_max = v }
  end

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let live_buffers () =
  Mutex.lock registry_m;
  let bs = !registry in
  Mutex.unlock registry_m;
  let g = Atomic.get generation in
  List.filter (fun b -> b.b_gen = g) bs

let sorted_bindings fold merge =
  let tbl = Hashtbl.create 32 in
  List.iter (fold tbl) (live_buffers ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> (k, merge v))

let merged_counters () =
  sorted_bindings
    (fun tbl b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt tbl name with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.replace tbl name (ref !r))
        b.b_counters)
    (fun r -> !r)

let merged_gauges () =
  sorted_bindings
    (fun tbl b ->
      Hashtbl.iter
        (fun name (g : gauge) ->
          match Hashtbl.find_opt tbl name with
          | Some acc ->
            if g.g_seq > acc.g_seq then begin
              acc.g_last <- g.g_last;
              acc.g_seq <- g.g_seq
            end;
            acc.g_max <- Float.max acc.g_max g.g_max
          | None ->
            Hashtbl.replace tbl name
              { g_last = g.g_last; g_max = g.g_max; g_seq = g.g_seq })
        b.b_gauges)
    (fun g -> (g.g_last, g.g_max))

let merged_hists () =
  sorted_bindings
    (fun tbl b ->
      Hashtbl.iter
        (fun name (h : hist) ->
          match Hashtbl.find_opt tbl name with
          | Some acc ->
            acc.h_n <- acc.h_n + h.h_n;
            acc.h_sum <- acc.h_sum +. h.h_sum;
            acc.h_min <- Float.min acc.h_min h.h_min;
            acc.h_max <- Float.max acc.h_max h.h_max
          | None ->
            Hashtbl.replace tbl name
              { h_n = h.h_n; h_sum = h.h_sum; h_min = h.h_min; h_max = h.h_max })
        b.b_hists)
    (fun h -> (h.h_n, h.h_sum, h.h_min, h.h_max))

type span_agg = {
  mutable a_n : int;
  mutable a_total : float;
  mutable a_min : float;
  mutable a_max : float;
}

let merged_spans () =
  sorted_bindings
    (fun tbl b ->
      List.iter
        (fun sp ->
          match Hashtbl.find_opt tbl sp.sp_name with
          | Some a ->
            a.a_n <- a.a_n + 1;
            a.a_total <- a.a_total +. sp.sp_dur;
            a.a_min <- Float.min a.a_min sp.sp_dur;
            a.a_max <- Float.max a.a_max sp.sp_dur
          | None ->
            Hashtbl.replace tbl sp.sp_name
              { a_n = 1; a_total = sp.sp_dur; a_min = sp.sp_dur; a_max = sp.sp_dur })
        b.b_spans)
    (fun a -> (a.a_n, a.a_total, a.a_min, a.a_max))

let all_spans () =
  List.concat_map (fun b -> List.rev b.b_spans) (live_buffers ())
  |> List.sort (fun a b ->
         match compare a.sp_dom b.sp_dom with
         | 0 -> compare a.sp_start b.sp_start
         | c -> c)

let domains () =
  List.map (fun b -> b.b_dom) (live_buffers ())
  |> List.sort_uniq compare

(* test accessors over the merged view *)
let counter_value name =
  match List.assoc_opt name (merged_counters ()) with Some n -> n | None -> 0

let gauge_last name =
  Option.map fst (List.assoc_opt name (merged_gauges ()))

let gauge_max name =
  Option.map snd (List.assoc_opt name (merged_gauges ()))

let span_count name =
  match List.assoc_opt name (merged_spans ()) with
  | Some (n, _, _, _) -> n
  | None -> 0

let hist_count name =
  match List.assoc_opt name (merged_hists ()) with
  | Some (n, _, _, _) -> n
  | None -> 0

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.12g keeps integral values integral ("3", not "3.000000") so golden
   tests on deterministic reports read naturally *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, add_v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      add_v buf)
    fields;
  Buffer.add_char buf '}'

let schema_version = "paqoc-metrics v1"

let report_json () =
  let buf = Buffer.create 1024 in
  obj buf
    [ ("schema", fun b -> Buffer.add_string b ("\"" ^ schema_version ^ "\""));
      ( "counters",
        fun b ->
          obj b
            (List.map
               (fun (k, n) ->
                 (k, fun b -> Buffer.add_string b (string_of_int n)))
               (merged_counters ())) );
      ( "gauges",
        fun b ->
          obj b
            (List.map
               (fun (k, (last, mx)) ->
                 ( k,
                   fun b ->
                     obj b
                       [ ("last", fun b -> Buffer.add_string b (json_float last));
                         ("max", fun b -> Buffer.add_string b (json_float mx))
                       ] ))
               (merged_gauges ())) );
      ( "histograms",
        fun b ->
          obj b
            (List.map
               (fun (k, (n, sum, mn, mx)) ->
                 ( k,
                   fun b ->
                     obj b
                       [ ("count", fun b -> Buffer.add_string b (string_of_int n));
                         ("sum", fun b -> Buffer.add_string b (json_float sum));
                         ("min", fun b -> Buffer.add_string b (json_float mn));
                         ("max", fun b -> Buffer.add_string b (json_float mx));
                         ( "mean",
                           fun b ->
                             Buffer.add_string b
                               (json_float (sum /. float_of_int (max 1 n))) )
                       ] ))
               (merged_hists ())) );
      ( "spans",
        fun b ->
          obj b
            (List.map
               (fun (k, (n, total, mn, mx)) ->
                 ( k,
                   fun b ->
                     obj b
                       [ ("count", fun b -> Buffer.add_string b (string_of_int n));
                         ("total_s", fun b -> Buffer.add_string b (json_float total));
                         ("min_s", fun b -> Buffer.add_string b (json_float mn));
                         ("max_s", fun b -> Buffer.add_string b (json_float mx))
                       ] ))
               (merged_spans ())) );
      ( "domains",
        fun b ->
          Buffer.add_char b '[';
          List.iteri
            (fun i d ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (string_of_int d))
            (domains ());
          Buffer.add_char b ']' )
    ];
  Buffer.contents buf

(* Chrome trace-event format: one "X" (complete) event per span, ts/dur in
   microseconds, tid = recording domain. Load the file in about:tracing or
   https://ui.perfetto.dev to see the per-domain timeline. *)
let trace_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char buf ',';
      obj buf
        [ ("name", fun b -> Buffer.add_string b ("\"" ^ json_escape sp.sp_name ^ "\""));
          ("cat", fun b -> Buffer.add_string b "\"paqoc\"");
          ("ph", fun b -> Buffer.add_string b "\"X\"");
          ( "ts",
            fun b -> Buffer.add_string b (json_float (sp.sp_start *. 1e6)) );
          ("dur", fun b -> Buffer.add_string b (json_float (sp.sp_dur *. 1e6)));
          ("pid", fun b -> Buffer.add_string b "1");
          ("tid", fun b -> Buffer.add_string b (string_of_int sp.sp_dom))
        ])
    (all_spans ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* atomic write: a crashed or failing dump never leaves a truncated file *)
let write_file what path content =
  let tmp = path ^ ".tmp" in
  let oc =
    try open_out tmp
    with Sys_error msg -> failwith (Printf.sprintf "Obs.%s: %s" what msg)
  in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc content)
   with Sys_error msg ->
     (try Sys.remove tmp with Sys_error _ -> ());
     failwith (Printf.sprintf "Obs.%s: %s" what msg));
  try Sys.rename tmp path
  with Sys_error msg -> failwith (Printf.sprintf "Obs.%s: %s" what msg)

let write_report path = write_file "write_report" path (report_json ())
let write_trace path = write_file "write_trace" path (trace_json ())
