(* CLOCK_MONOTONIC via bechamel's C stub (already a build dependency of the
   bench harness). [Sys.time] must never be used for task accounting: it
   returns process-wide CPU time, so under [--jobs N] every concurrent
   task's reading is inflated by the CPU the other domains burn. *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
