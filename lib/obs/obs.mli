(** Process-global metrics and tracing for the compile pipeline.

    The pipeline's headline claims are about {e time}, so the pipeline
    carries a single global observability sink that any layer can record
    into without threading a handle: hierarchical wall-clock {b spans}
    ({!with_span}), monotonically increasing {b counters} ({!count}),
    last-value {b gauges} ({!gauge}) and {b histograms} ({!observe}).

    The sink is disabled by default and every recording point costs one
    atomic load in that state, so instrumentation can live in hot paths.
    When enabled, each domain records into its own buffer ([Domain.DLS]) —
    no cross-domain contention — and the buffers are merged only when a
    report is taken. Worker-domain events survive the domain's death.

    Reports are deterministic in {e structure}: every map in the JSON is
    sorted by name, and values that do not involve the clock (counters,
    gauges, histogram observations of deterministic quantities) are
    reproducible, which is what the test suite asserts on.

    Intended protocol: [enable] (or [reset]) at a quiescent point, run the
    instrumented workload, then [report_json]/[trace_json] after the
    workload (including any worker domains) has finished. *)

(** {1 Lifecycle} *)

(** [enable ()] clears all recorded data and turns recording on. *)
val enable : unit -> unit

(** [disable ()] turns recording off; already-recorded data is kept. *)
val disable : unit -> unit

(** [reset ()] turns recording off and discards all recorded data. *)
val reset : unit -> unit

val enabled : unit -> bool

(** {1 Recording} *)

(** [with_span name f] runs [f], recording a wall-clock span around it on
    the calling domain. Spans nest (the per-domain nesting depth is
    recorded); the span is recorded even when [f] raises. Disabled: tail
    calls [f] with no other work. *)
val with_span : string -> (unit -> 'a) -> 'a

(** [count ?n name] adds [n] (default 1) to counter [name]. *)
val count : ?n:int -> string -> unit

(** [gauge name v] sets gauge [name] to [v]; the report keeps the last and
    the maximum value ever set. *)
val gauge : string -> float -> unit

(** [observe name v] adds observation [v] to histogram [name]; the report
    keeps count/sum/min/max/mean. *)
val observe : string -> float -> unit

(** {1 Reports}

    All maps sorted by name; see DESIGN.md §6 for the schema. *)

(** Aggregated JSON report (schema ["paqoc-metrics v1"]). *)
val report_json : unit -> string

(** Chrome trace-event JSON (one complete event per span, [tid] = domain);
    load in [about:tracing] or Perfetto. *)
val trace_json : unit -> string

(** [write_report path] / [write_trace path] dump atomically (write to
    [path.tmp], then rename).
    @raise Failure when [path] is not writable. *)
val write_report : string -> unit

val write_trace : string -> unit

(** {1 Merged accessors (tests, bench)} *)

(** Merged value of a counter across all domains (0 when absent). *)
val counter_value : string -> int

(** Last value set on a gauge, across all domains ([None] when absent). *)
val gauge_last : string -> float option

(** Maximum value ever set on a gauge ([None] when absent) — e.g. the
    high-water [server.queue_depth] of a daemon run. *)
val gauge_max : string -> float option

(** Number of completed spans recorded under a name, across all domains. *)
val span_count : string -> int

(** Number of observations recorded under a histogram name. *)
val hist_count : string -> int
