(** Monotonic wall clock.

    All duration measurements in the code base go through this module so
    that per-task accounting is wall time on a monotonic clock — immune to
    both NTP adjustments and the classic [Sys.time] bug where process-wide
    CPU time inflates every concurrent task's reading by the work the
    other domains did. *)

(** Nanoseconds on CLOCK_MONOTONIC (arbitrary epoch). *)
val now_ns : unit -> int64

(** Seconds on CLOCK_MONOTONIC (arbitrary epoch); subtract two readings
    for an elapsed wall-clock duration. *)
val now_s : unit -> float
