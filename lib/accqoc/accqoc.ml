module Circuit = Paqoc_circuit.Circuit
module Generator = Paqoc_pulse.Generator
module Pricing = Paqoc_pulse.Pricing

type report = {
  grouped : Circuit.t;
  latency : float;
  esp : float;
  compile_seconds : float;
  n_groups : int;
  pulses_generated : int;
  cache_hits : int;
  fallbacks : int;
}

(* Same scoped attachment as [Paqoc.compile]: the cache lives for this
   compile only, and the generator's previous attachment is restored. *)
let with_shared_cache ?cache gen f =
  match cache with
  | None -> f ()
  | Some c ->
    let previous = Generator.shared_cache gen in
    Generator.set_shared_cache gen (Some c);
    Fun.protect
      ~finally:(fun () -> Generator.set_shared_cache gen previous)
      f

let compile ?(slicer = Slicer.accqoc_n3d3) ?(jobs = 1) ?cache gen
    (c : Circuit.t) =
  with_shared_cache ?cache gen @@ fun () ->
  Paqoc_obs.Obs.with_span "accqoc.compile" @@ fun () ->
  let seconds0 = Generator.total_seconds gen in
  let generated0 = Generator.pulses_generated gen in
  let hits0 = Generator.cache_hits gen in
  let fallbacks0 = Generator.fallbacks gen in
  let grouped =
    Paqoc_obs.Obs.with_span "accqoc.slice" (fun () ->
        Slicer.group_circuit slicer c)
  in
  (* similarity-MST generation order maximises warm starts; the batch
     planner keeps that seeding (each slice still warm-starts from its
     MST neighbour) while letting independent MST branches synthesise in
     parallel *)
  let groups =
    List.map
      (fun g -> fst (Generator.group_of_apps [ g ]))
      grouped.Circuit.gates
  in
  let ordered = Similarity.generation_order groups in
  ignore (Generator.generate_batch ~jobs gen ordered);
  let latency = Pricing.circuit_latency gen grouped in
  let esp = Pricing.circuit_esp gen grouped in
  { grouped;
    latency;
    esp;
    compile_seconds = Generator.total_seconds gen -. seconds0;
    n_groups = Circuit.n_gates grouped;
    pulses_generated = Generator.pulses_generated gen - generated0;
    cache_hits = Generator.cache_hits gen - hits0;
    fallbacks = Generator.fallbacks gen - fallbacks0
  }
