(** The AccQOC baseline, end to end.

    [compile] slices the physical circuit into fixed-size customized gates,
    orders the distinct subcircuits along the similarity MST, generates (or
    prices) a pulse per subcircuit through the shared {!Paqoc_pulse.Generator}
    interface, and reports whole-circuit latency, ESP and compilation
    cost — the three quantities Figs 10-12 compare. *)

type report = {
  grouped : Paqoc_circuit.Circuit.t;  (** circuit of customized gates *)
  latency : float;  (** critical-path latency, device dt *)
  esp : float;  (** Eq. 2 estimated success probability *)
  compile_seconds : float;  (** pulse-generation cost charged *)
  n_groups : int;  (** customized gates in the schedule *)
  pulses_generated : int;  (** distinct QOC runs *)
  cache_hits : int;
  fallbacks : int;  (** slices that degraded to decomposed-basis pulses *)
}

(** [compile ?slicer ?jobs ?cache gen c] runs the baseline on physical
    circuit [c] through generator [gen]. Default slicing is
    [accqoc_n3d3]. [jobs] (default 1) parallelises slice pricing across
    worker domains; the MST warm-start order is preserved and the result
    is identical to the serial run. [cache] scopes a shared cross-run
    {!Paqoc_pulse.Cache} to this compile (see
    {!Paqoc.compile}); the generator's previous attachment is restored
    on return. *)
val compile :
  ?slicer:Slicer.config ->
  ?jobs:int ->
  ?cache:Paqoc_pulse.Cache.t ->
  Paqoc_pulse.Generator.t ->
  Paqoc_circuit.Circuit.t ->
  report
