module Gen = Paqoc_pulse.Generator
module Cache = Paqoc_pulse.Cache

type row = {
  name : string;
  synthesized : int;
  hits : int;
  canonical_hits : int;
}

let hit_rate r =
  let consults = r.hits + r.synthesized in
  if consults = 0 then 0.0 else float_of_int r.hits /. float_of_int consults

let compute ?(jobs = 1) () =
  (* one shared cache across the suite in Table I order: each row's hits
     include cross-benchmark reuse, exactly like the cold pass of
     BENCH_cache.json. Deterministic at any [jobs] (the batch planner's
     serial-commit equivalence), so the golden needs no jobs caveat. *)
  let cache = Cache.create () in
  List.map
    (fun (e : Suite.entry) ->
      let gen = Gen.model_default () in
      let t = Suite.transpiled e in
      let s0 = Cache.stats cache in
      let r =
        Paqoc.compile ~jobs ~cache ~canonical:true gen
          t.Paqoc_topology.Transpile.physical
      in
      let s1 = Cache.stats cache in
      { name = e.Suite.name;
        synthesized = r.Paqoc.pulses_generated;
        hits = s1.Cache.hits - s0.Cache.hits;
        canonical_hits = s1.Cache.canonical_hits - s0.Cache.canonical_hits
      })
    Suite.all

let header =
  "# paqoc golden canonical hit-rate table v1\n\
   # benchmark synthesized cache_hits canonical_hits hit_rate\n\
   # (cold shared-cache suite, --canonical-cache, model backend)\n\
   # regenerate with: make update-golden\n"

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d %d %.4f\n" r.name r.synthesized r.hits
           r.canonical_hits (hit_rate r)))
    rows;
  Buffer.contents buf

let parse s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.split_on_char ' ' l with
         | [ name; synth; hits; canon; _rate ] -> (
           match
             (int_of_string_opt synth, int_of_string_opt hits,
              int_of_string_opt canon)
           with
           | Some synthesized, Some hits, Some canonical_hits ->
             { name; synthesized; hits; canonical_hits }
           | _ -> failwith ("Canon_table.parse: bad row " ^ l))
         | _ -> failwith ("Canon_table.parse: bad row " ^ l))
