(** The pinned per-benchmark canonical hit-rate table.

    Compiles the 17 Table I benchmarks in order through one shared
    in-memory cache with the canonicalization layer on (the cold pass of
    [--canonical-cache]), recording per benchmark how many pulses were
    synthesized, how many consults the cache answered, and how many of
    those answers came from the equivalence-class tier. The rendering is
    a deterministic function of those integers, pinned byte-for-byte by
    test/golden/canon_hit_rates.txt and refreshed by [make
    update-golden]. *)

type row = {
  name : string;
  synthesized : int;  (** pulses priced fresh for this benchmark *)
  hits : int;  (** cache consults answered (either tier) *)
  canonical_hits : int;  (** the subset answered by a class-mate replay *)
}

(** [hit_rate r] is [hits / (hits + synthesized)] ([0.0] when empty). *)
val hit_rate : row -> float

(** [compute ()] runs the cold canonical suite. [jobs] (default 1) only
    sets the worker count — the rows are jobs-invariant. *)
val compute : ?jobs:int -> unit -> row list

(** [render rows] is the golden file contents (header + one line per
    benchmark). *)
val render : row list -> string

(** [parse s] inverts {!render} (ignoring the rendered rate column).
    @raise Failure on a malformed row. *)
val parse : string -> row list
