module Gen = Paqoc_pulse.Generator

type row = { name : string; latency : float; n_groups : int }

let compute ?(jobs = 1) () =
  List.map
    (fun (e : Suite.entry) ->
      (* a fresh generator per benchmark: rows must not depend on the
         compile order through shared pulse-database state *)
      let gen = Gen.model_default () in
      let t = Suite.transpiled e in
      let r = Paqoc.compile ~jobs gen t.Paqoc_topology.Transpile.physical in
      { name = e.Suite.name;
        latency = r.Paqoc.latency;
        n_groups = r.Paqoc.n_groups
      })
    Suite.all

let header =
  "# paqoc golden latency table v1\n\
   # benchmark latency_dt pulse_episodes (paqoc-m0, 5x5 grid, model backend)\n\
   # regenerate with: make update-golden\n"

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %.17g %d\n" r.name r.latency r.n_groups))
    rows;
  Buffer.contents buf

let parse s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.split_on_char ' ' l with
         | [ name; lat; groups ] -> (
           match (float_of_string_opt lat, int_of_string_opt groups) with
           | Some latency, Some n_groups -> { name; latency; n_groups }
           | _ -> failwith ("Latency_table.parse: bad row " ^ l))
         | _ -> failwith ("Latency_table.parse: bad row " ^ l))
