(** The pinned 17-benchmark latency table.

    Computes, renders and parses the golden regression table: for every
    Table I benchmark, the PAQOC-M0 compiled latency and pulse-episode
    count on the paper's 5x5 grid (analytic backend, fresh generator per
    benchmark — fully deterministic). The golden test compares
    {!render}[ (compute ())] byte-for-byte against the checked-in file;
    [make update-golden] refreshes it through the same code path, so the
    file can never drift from what the test computes. *)

type row = { name : string; latency : float; n_groups : int }

(** [compute ()] compiles all seventeen benchmarks and returns their rows
    in Table I order. [jobs] parallelises each compile's pulse batches
    (the result is jobs-independent). *)
val compute : ?jobs:int -> unit -> row list

(** [render rows] is the canonical text form: a fixed header plus one
    [name latency n_groups] line per row. Byte-stable across runs and
    [jobs] counts. *)
val render : row list -> string

(** [parse s] reads {!render} output back.
    @raise Failure on a malformed table. *)
val parse : string -> row list
