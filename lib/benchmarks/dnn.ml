module Gate = Paqoc_circuit.Gate
module Circuit = Paqoc_circuit.Circuit
module Angle = Paqoc_circuit.Angle

let circuit ?(symbolic = false) ?(seed = 3) ?(blocks = 24) ~n () =
  if n < 3 then invalid_arg "Dnn.circuit: need at least 3 qubits";
  let rng = Random.State.make [| seed; n; blocks |] in
  let angle b q =
    if symbolic then Angle.Sym (Printf.sprintf "w%d_%d" b q)
    else Angle.const (Random.State.float rng 6.28)
  in
  let gates = ref [] in
  let push g = gates := g :: !gates in
  for b = 0 to blocks - 1 do
    (* rotation layer *)
    for q = 0 to n - 1 do
      push (Gate.app1 (Gate.RY (angle b q)) q)
    done;
    (* dense entangler: every ordered non-adjacent pair (8 qubits -> 42
       CXs per block, the all-to-all coupling a dense QNN layer needs) *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && abs (i - j) <> 1 then push (Gate.app2 Gate.CX i j)
      done
    done
  done;
  Circuit.make ~n_qubits:n (List.rev !gates)
