(** The pinned 32-point variational sweep table.

    Computes, renders and parses the golden regression table for the
    parametric fast path: the qaoa sweep benchmark on the paper's 5x5
    grid is frozen once (model backend, 5 anchors) and driven through
    {!Paqoc.Variational.recompile} over the seeded 32-point angle sweep
    every other consumer uses (seed 11, {!Paqoc.Variational.sweep_angles}).
    Each row pins one iteration's latency, ESP and interp/fallback/resynth
    accounting, so any change to the anchor grid, the interpolation rule,
    the fallback policy or the slot pricing moves a byte here. The golden
    test compares {!render}[ (compute ())] byte-for-byte against the
    checked-in file; [make update-golden] refreshes it through the same
    code path. *)

type row = {
  iter : int;
  latency : float;
  esp : float;
  interp : int;
  fallback : int;
  resynth : int;
}

(** [compute ()] freezes a fresh plan and replays the seeded sweep,
    returning one row per iteration in sweep order. Fully deterministic:
    fresh generator and plan per call, analytic backend. *)
val compute : unit -> row list

(** [render rows] is the canonical text form: a fixed header plus one
    [iter latency esp interp fallback resynth] line per row. Byte-stable
    across runs. *)
val render : row list -> string

(** [parse s] reads {!render} output back.
    @raise Failure on a malformed table. *)
val parse : string -> row list
