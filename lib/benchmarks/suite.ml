module Circuit = Paqoc_circuit.Circuit
module Coupling = Paqoc_topology.Coupling
module Transpile = Paqoc_topology.Transpile
module Generator = Paqoc_pulse.Generator
module Slicer = Paqoc_accqoc.Slicer

type entry = {
  name : string;
  description : string;
  build : unit -> Circuit.t;
  paper_qubits : int;
  paper_1q : int;
  paper_2q : int;
}

let all =
  [ { name = "mod5d2_64"; description = "Toffoli network";
      build = Revlib.mod5d2_64; paper_qubits = 5; paper_1q = 28;
      paper_2q = 25 };
    { name = "rd32_270"; description = "Bit adder";
      build = Revlib.rd32_270; paper_qubits = 4; paper_1q = 48;
      paper_2q = 36 };
    { name = "decod24-v1_41"; description = "Binary decoder";
      build = Revlib.decod24_v1_41; paper_qubits = 4; paper_1q = 47;
      paper_2q = 38 };
    { name = "4gt10-v1_81"; description = "4 greater than 10";
      build = Revlib.gt10_v1_81; paper_qubits = 5; paper_1q = 82;
      paper_2q = 66 };
    { name = "cnt3-5_179"; description = "Ternary counter";
      build = Revlib.cnt3_5_179; paper_qubits = 16; paper_1q = 90;
      paper_2q = 85 };
    { name = "hwb4_49"; description = "Hidden weighted bit";
      build = Revlib.hwb4_49; paper_qubits = 5; paper_1q = 126;
      paper_2q = 107 };
    { name = "ham7_104"; description = "Hamming code";
      build = Revlib.ham7_104; paper_qubits = 7; paper_1q = 171;
      paper_2q = 149 };
    { name = "majority_239"; description = "Majority function";
      build = Revlib.majority_239; paper_qubits = 7; paper_1q = 345;
      paper_2q = 267 };
    { name = "bv"; description = "Bernstein-Vazirani";
      build = (fun () -> Bv.circuit ~n_data:20 ());
      paper_qubits = 21; paper_1q = 43; paper_2q = 20 };
    { name = "adder"; description = "Cuccaro adder";
      build = (fun () -> Cuccaro_adder.circuit ~bits:8 ());
      paper_qubits = 18; paper_1q = 160; paper_2q = 107 };
    { name = "qft"; description = "Quantum Fourier transform";
      build = (fun () -> Qft.circuit ~with_swaps:false ~n:16 ());
      paper_qubits = 16; paper_1q = 16; paper_2q = 120 };
    { name = "qaoa"; description = "QAOA maxcut";
      build = (fun () -> Qaoa.circuit ~n:10 ());
      paper_qubits = 10; paper_1q = 65; paper_2q = 90 };
    { name = "supre"; description = "Supremacy";
      build = (fun () -> Supremacy.circuit ~rows:5 ~cols:5 ());
      paper_qubits = 25; paper_1q = 245; paper_2q = 100 };
    { name = "simon"; description = "Simon's algorithm";
      build = (fun () -> Simon.circuit ~n_data:3 ());
      paper_qubits = 6; paper_1q = 14; paper_2q = 16 };
    { name = "qpe"; description = "Quantum phase estimation";
      build = (fun () -> Qpe.circuit ~n_count:8 ());
      paper_qubits = 9; paper_1q = 28; paper_2q = 33 };
    { name = "dnn"; description = "Deep neural network";
      build = (fun () -> Dnn.circuit ~n:8 ());
      paper_qubits = 8; paper_1q = 192; paper_2q = 1008 };
    { name = "bb84"; description = "Crypto protocol";
      build = (fun () -> Bb84.circuit ~n:8 ());
      paper_qubits = 8; paper_1q = 27; paper_2q = 0 }
  ]

let extras =
  [ { name = "grover"; description = "Grover search";
      build = (fun () -> Grover.circuit ~n:5 ());
      paper_qubits = 7; paper_1q = 0; paper_2q = 0 };
    { name = "ghz"; description = "GHZ state preparation";
      build = (fun () -> States.ghz ~n:12 ());
      paper_qubits = 12; paper_1q = 0; paper_2q = 0 };
    { name = "wstate"; description = "W state preparation";
      build = (fun () -> States.w ~n:10 ());
      paper_qubits = 10; paper_1q = 0; paper_2q = 0 };
    { name = "hidden_shift"; description = "Hidden shift (bent function)";
      build = (fun () -> Hidden_shift.circuit ~n:10 ());
      paper_qubits = 10; paper_1q = 0; paper_2q = 0 };
    { name = "vqe"; description = "Hardware-efficient VQE ansatz";
      build = (fun () -> Vqe.circuit ~n:8 ());
      paper_qubits = 8; paper_1q = 0; paper_2q = 0 }
  ]

let find name =
  match
    List.find_opt (fun e -> String.equal e.name name) (all @ extras)
  with
  | Some e -> e
  | None -> raise Not_found

type sweep_entry = {
  sweep_name : string;
  sweep_description : string;
  sweep_build : unit -> Circuit.t;
}

let sweeps =
  [ { sweep_name = "qaoa";
      sweep_description = "QAOA maxcut, symbolic gamma/beta angles";
      sweep_build = (fun () -> Qaoa.circuit ~symbolic:true ~n:10 ~p:3 ())
    };
    { sweep_name = "vqe";
      sweep_description = "hardware-efficient VQE ansatz, symbolic angles";
      sweep_build = (fun () -> Vqe.circuit ~symbolic:true ~n:8 ~layers:3 ())
    };
    { sweep_name = "dnn";
      sweep_description = "dense QNN ansatz, symbolic weights";
      sweep_build = (fun () -> Dnn.circuit ~symbolic:true ~n:4 ~blocks:2 ())
    }
  ]

let sweep_find name =
  match
    List.find_opt (fun e -> String.equal e.sweep_name name) sweeps
  with
  | Some e -> e
  | None -> raise Not_found

let table2_names =
  [ "4gt10-v1_81"; "decod24-v1_41"; "hwb4_49"; "rd32_270"; "bb84"; "simon" ]

let table3_names = [ "bv"; "adder"; "qft"; "qaoa"; "supre" ]

let transpile_cache : (string, Transpile.t) Hashtbl.t = Hashtbl.create 32

let transpiled entry =
  match Hashtbl.find_opt transpile_cache entry.name with
  | Some t -> t
  | None ->
    let t = Transpile.run (entry.build ()) in
    Hashtbl.replace transpile_cache entry.name t;
    t

let small_cache : (string, Transpile.t) Hashtbl.t = Hashtbl.create 32

let transpiled_small entry =
  match Hashtbl.find_opt small_cache entry.name with
  | Some t -> t
  | None ->
    let c = entry.build () in
    let n = c.Circuit.n_qubits in
    let rows = int_of_float (ceil (sqrt (float_of_int n))) in
    let cols = (n + rows - 1) / rows in
    let device = Coupling.grid ~rows ~cols in
    let t = Transpile.run ~coupling:device c in
    Hashtbl.replace small_cache entry.name t;
    t

let observation_corpus () =
  (* maximal consecutive same-qubit groups: slice with unbounded depth *)
  let cfg = { Slicer.max_qubits = 3; max_depth = 1_000_000 } in
  List.concat_map
    (fun entry ->
      let t = transpiled entry in
      let physical = t.Transpile.physical in
      let dag = Paqoc_circuit.Dag.of_circuit physical in
      Slicer.slice cfg physical
      |> List.filter (fun nodes -> List.length nodes >= 2)
      |> List.map (fun nodes ->
             let apps = List.map (Paqoc_circuit.Dag.gate dag) nodes in
             fst (Generator.group_of_apps apps)))
    (all @ extras)
