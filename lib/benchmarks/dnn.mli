(** A dense quantum-neural-network ansatz: repeated blocks of per-qubit RY
    rotations followed by a dense CX entangling schedule, matching the
    gate-mix scale of the paper's [dnn] benchmark (8 qubits, ~1200 gates,
    heavily two-qubit dominated). With [symbolic = true] every rotation is
    a named weight parameter [w<block>_<qubit>] — the training-loop shape
    {!Paqoc.Variational}'s sweep fast path targets. *)

val circuit :
  ?symbolic:bool -> ?seed:int -> ?blocks:int -> n:int -> unit ->
  Paqoc_circuit.Circuit.t
