module V = Paqoc.Variational
module Gen = Paqoc_pulse.Generator
module Coupling = Paqoc_topology.Coupling
module Transpile = Paqoc_topology.Transpile

type row = {
  iter : int;
  latency : float;
  esp : float;
  interp : int;
  fallback : int;
  resynth : int;
}

let seed = 11
let iterations = 32
let anchors = 5

let compute () =
  (* a fresh plan per call: fallback adoption mutates plans, so sharing
     one across calls would make the table depend on compute order *)
  let e = Suite.sweep_find "qaoa" in
  let t =
    Transpile.run
      ~coupling:(Coupling.grid ~rows:5 ~cols:5)
      (e.Suite.sweep_build ())
  in
  let plan =
    V.freeze ~anchors (V.prepare t.Transpile.physical) (Gen.model_default ())
  in
  let sweep = V.sweep_angles ~seed ~n:iterations (V.plan_params plan) in
  let gen = Gen.model_default () in
  List.mapi
    (fun i angles ->
      let it = V.recompile plan gen ~angles in
      { iter = i;
        latency = it.V.latency;
        esp = it.V.esp;
        interp = it.V.interp;
        fallback = it.V.fallback;
        resynth = it.V.resynth
      })
    sweep

let header =
  "# paqoc golden sweep table v1\n\
   # iter latency_dt esp interp fallback resynth (qaoa sweep benchmark, \
   5x5 grid, model backend, seed 11, 5 anchors)\n\
   # regenerate with: make update-golden\n"

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d %.17g %.17g %d %d %d\n" r.iter r.latency r.esp
           r.interp r.fallback r.resynth))
    rows;
  Buffer.contents buf

let parse s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.split_on_char ' ' l with
         | [ iter; lat; esp; interp; fallback; resynth ] -> (
           match
             ( int_of_string_opt iter,
               float_of_string_opt lat,
               float_of_string_opt esp,
               int_of_string_opt interp,
               int_of_string_opt fallback,
               int_of_string_opt resynth )
           with
           | ( Some iter,
               Some latency,
               Some esp,
               Some interp,
               Some fallback,
               Some resynth ) ->
             { iter; latency; esp; interp; fallback; resynth }
           | _ -> failwith ("Sweep_table.parse: bad row " ^ l))
         | _ -> failwith ("Sweep_table.parse: bad row " ^ l))
