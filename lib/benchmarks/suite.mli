(** The seventeen evaluation benchmarks of Table I, plus the subcircuit
    corpus behind Fig 6 / Observations 1-2. *)

type entry = {
  name : string;
  description : string;
  build : unit -> Paqoc_circuit.Circuit.t;  (** logical circuit *)
  paper_qubits : int;  (** qubit count reported in Table I *)
  paper_1q : int;  (** 1q-gate count reported in Table I *)
  paper_2q : int;  (** 2q-gate count reported in Table I *)
}

(** All seventeen, in Table I order. *)
val all : entry list

(** Additional structured workloads beyond Table I (Grover, GHZ, W state,
    hidden shift, a VQE ansatz) — they widen the Fig 6 observation corpus
    the way the paper's 150-benchmark pool did, and serve the mining and
    variational tests. *)
val extras : entry list

(** [find name] — @raise Not_found on unknown names. *)
val find : string -> entry

(** A parameterised (symbolic-angle) benchmark served by the variational
    sweep fast path ([compile-sweep], [--bench-sweep], the sweep golden).
    The build yields the {e logical} symbolic circuit; callers transpile
    and {!Paqoc.Variational.freeze} it themselves. *)
type sweep_entry = {
  sweep_name : string;
  sweep_description : string;
  sweep_build : unit -> Paqoc_circuit.Circuit.t;
}

(** The three parameterised sweep benchmarks: [qaoa] (10 qubits, 6
    angles), [vqe] (8 qubits, 64 angles), [dnn] (4 qubits, 8 weights). *)
val sweeps : sweep_entry list

(** [sweep_find name] — @raise Not_found on unknown names. *)
val sweep_find : string -> sweep_entry

(** The six benchmarks the paper pulse-simulates in Table II. *)
val table2_names : string list

(** The five benchmarks whose mined patterns Table III reports. *)
val table3_names : string list

(** [transpiled entry] routes the logical circuit onto the paper's 5x5
    grid and lowers it to the hardware basis; results are memoised. *)
val transpiled : entry -> Paqoc_topology.Transpile.t

(** [transpiled_small entry] routes onto a device that is just large
    enough (smallest grid that fits), used where whole-circuit unitaries
    or state vectors must stay tractable. *)
val transpiled_small : entry -> Paqoc_topology.Transpile.t

(** [observation_corpus ()] extracts, from all transpiled benchmarks
    (Table I and extras), the
    maximal consecutive same-qubit-set subcircuits of up to three qubits —
    the corpus behind Fig 6 (at least 150 groups). Each item is the gate
    list over local wires. *)
val observation_corpus : unit -> Paqoc_pulse.Generator.group list
