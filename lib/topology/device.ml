type qubit_cal = { anharmonicity : float; drive_bound : float }

type t = {
  name : string;
  description : string;
  coupling : Coupling.t;
  edge_mu : ((int * int) * float) list;
  qubits : qubit_cal array;
}

let default_mu = 0.02
let drive_ratio = 5.0
let default_anharmonicity = -0.34

let sorted_edges coupling =
  List.sort compare
    (List.map
       (fun (a, b) -> if a <= b then (a, b) else (b, a))
       (Coupling.edges coupling))

let uniform_cal n =
  Array.init n (fun _ ->
      { anharmonicity = default_anharmonicity;
        drive_bound = drive_ratio *. default_mu })

(* Deterministic fabrication spread for the named non-lattice devices:
   a fixed arithmetic pattern over the edge endpoints (resp. qubit
   index), spanning +-1% around the nominal value. Documented in
   docs/devices.md; changing it changes every non-lattice device hash. *)
let edge_spread a b =
  1.0 +. (0.01 *. float_of_int ((((7 * a) + (13 * b)) mod 9) - 4) /. 4.0)

let qubit_spread q = 1.0 +. (0.01 *. float_of_int (((11 * q) mod 9) - 4) /. 4.0)

let calibrated ~name ~description coupling =
  let edges = sorted_edges coupling in
  { name;
    description;
    coupling;
    edge_mu =
      List.map (fun (a, b) -> ((a, b), default_mu *. edge_spread a b)) edges;
    qubits =
      Array.init (Coupling.n_qubits coupling) (fun q ->
          { anharmonicity = default_anharmonicity *. qubit_spread q;
            drive_bound = drive_ratio *. default_mu *. qubit_spread q })
  }

let uniform ~name ~description coupling =
  let edges = sorted_edges coupling in
  { name;
    description;
    coupling;
    edge_mu = List.map (fun e -> (e, default_mu)) edges;
    qubits = uniform_cal (Coupling.n_qubits coupling)
  }

let lattice =
  uniform ~name:"lattice"
    ~description:"paper's 5x5 transmon lattice, uniform calibration"
    (Coupling.grid ~rows:5 ~cols:5)

let heavy_hex =
  calibrated ~name:"heavy-hex"
    ~description:"IBM heavy-hexagon, distance 5 (55 qubits)"
    (Coupling.heavy_hex ~distance:5)

let square =
  calibrated ~name:"square" ~description:"6x6 nearest-neighbour grid"
    (Coupling.grid ~rows:6 ~cols:6)

let ring =
  calibrated ~name:"ring" ~description:"25-qubit ring"
    (Coupling.ring 25)

let all = [ lattice; heavy_hex; square; ring ]
let find n = List.find_opt (fun d -> String.equal d.name n) all

let grid ~rows ~cols =
  if rows = 5 && cols = 5 then lattice
  else
    uniform
      ~name:(Printf.sprintf "%dx%d" rows cols)
      ~description:
        (Printf.sprintf "%dx%d nearest-neighbour grid, uniform calibration"
           rows cols)
      (Coupling.grid ~rows ~cols)

let name d = d.name
let coupling d = d.coupling
let n_qubits d = Coupling.n_qubits d.coupling

let edge_mu_of d a b =
  let e = if a <= b then (a, b) else (b, a) in
  List.assoc e d.edge_mu

let synthesis_mu d =
  match d.edge_mu with
  | [] -> default_mu
  | (_, m0) :: rest -> List.fold_left (fun acc (_, m) -> min acc m) m0 rest

let drive_bound d =
  if Array.length d.qubits = 0 then drive_ratio *. default_mu
  else Array.fold_left (fun acc c -> min acc c.drive_bound) infinity d.qubits

let hash d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "paqoc-device v1 %d\n" (n_qubits d));
  List.iter
    (fun ((a, b), mu) ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %.17g\n" a b mu))
    d.edge_mu;
  Array.iteri
    (fun q c ->
      Buffer.add_string buf
        (Printf.sprintf "q %d %.17g %.17g\n" q c.anharmonicity c.drive_bound))
    d.qubits;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let lattice_hash = lazy (hash lattice)

let cache_namespace d =
  let h = hash d in
  if String.equal h (Lazy.force lattice_hash) then ""
  else "dev:" ^ h ^ "|"

let pp ppf d =
  Format.fprintf ppf "%s: %d qubits, %d edges, hash %s" d.name (n_qubits d)
    (List.length d.edge_mu) (hash d)
