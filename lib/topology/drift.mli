(** Deterministic calibration drift.

    Real devices are recalibrated on a cadence; every recalibration
    epoch shifts coupling strengths and qubit parameters by fractions of
    a percent, and every cached pulse optimised against the old
    calibration is stale. [Drift] simulates that production failure
    mode deterministically: {!apply} perturbs a {!Device.t}'s
    calibration as a pure function of [(seed, epoch, site)], so the same
    seed and epoch always yield the same perturbed device — and hence
    the same {!Device.hash}, which is what lets tests pin the
    cache-invalidation behaviour byte-for-byte.

    Because the hash changes, every shared-cache key the drifted device
    reads or writes carries a fresh ["dev:<hash>|"] namespace
    ({!Device.cache_namespace}): stale pulses remain in the cache under
    the old hash (the recalibration policy keeps them — an epoch may
    roll back) until an explicit {!Paqoc_pulse.Cache.evict_devices}
    drops them. See [docs/devices.md] for the drift semantics. *)

(** Fractional half-width of one epoch's perturbation (0.01: each
    coupling strength and calibration value moves by at most +-1% per
    epoch, uniformly). *)
val amplitude : float

(** [apply ~seed ~epoch d] is [d] recalibrated to [epoch]. Epoch 0 is
    the identity (the device is returned unchanged, hash included).
    For [epoch > 0] every coupling strength, anharmonicity and drive
    bound is scaled by [1 + amplitude * u] with [u] drawn uniformly
    from [[-1, 1)] by a PRNG seeded with [(seed, epoch, site index)] —
    per-site streams, so perturbations are independent across sites and
    reproducible regardless of evaluation order. Epochs are not
    cumulative: [apply ~epoch:2] perturbs the base calibration, not the
    epoch-1 one.
    @raise Invalid_argument when [epoch < 0]. *)
val apply : seed:int -> epoch:int -> Device.t -> Device.t
