let amplitude = 0.01

(* One PRNG stream per (seed, epoch, site): drawing a site's scale
   factor never depends on how many draws other sites made, so the
   perturbed device is a pure function of the triple. *)
let scale ~seed ~epoch ~site =
  let st = Random.State.make [| 0x5d1f7; seed; epoch; site |] in
  1.0 +. (amplitude *. ((2.0 *. Random.State.float st 1.0) -. 1.0))

let apply ~seed ~epoch (d : Device.t) =
  if epoch < 0 then invalid_arg "Drift.apply: negative epoch";
  if epoch = 0 then d
  else
    let n_edges = List.length d.Device.edge_mu in
    { d with
      Device.description =
        Printf.sprintf "%s [drift seed %d epoch %d]" d.Device.description
          seed epoch;
      edge_mu =
        List.mapi
          (fun i (e, mu) -> (e, mu *. scale ~seed ~epoch ~site:i))
          d.Device.edge_mu;
      qubits =
        Array.mapi
          (fun q (c : Device.qubit_cal) ->
            { Device.anharmonicity =
                c.Device.anharmonicity
                *. scale ~seed ~epoch ~site:(n_edges + (2 * q));
              drive_bound =
                c.Device.drive_bound
                *. scale ~seed ~epoch ~site:(n_edges + (2 * q) + 1)
            })
          d.Device.qubits
    }
