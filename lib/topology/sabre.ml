module Gate = Paqoc_circuit.Gate
module Circuit = Paqoc_circuit.Circuit
module Dag = Paqoc_circuit.Dag
module Obs = Paqoc_obs.Obs

type result = {
  physical : Circuit.t;
  initial : Layout.t;
  final : Layout.t;
  swaps_added : int;
}

(* SABRE parameters from the paper: extended-set weight 0.5, size ~20,
   decay increment 0.001 reset every 5 SWAPs. *)
let ext_weight = 0.5
let ext_size = 20
let decay_delta = 0.001
let decay_reset = 5

let route ?initial (c : Circuit.t) (cg : Coupling.t) =
  Obs.with_span "sabre.route" @@ fun () ->
  let np = Coupling.n_qubits cg in
  if c.Circuit.n_qubits > np then
    invalid_arg "Sabre.route: device smaller than circuit";
  List.iter
    (fun (g : Gate.app) ->
      if List.length g.Gate.qubits > 2 then
        invalid_arg "Sabre.route: decompose 3+ qubit gates before routing")
    c.Circuit.gates;
  let layout =
    match initial with
    | Some l -> Layout.copy l
    | None -> Layout.trivial ~n_logical:c.Circuit.n_qubits ~n_physical:np
  in
  let initial_layout = Layout.copy layout in
  let gates = Array.of_list c.Circuit.gates in
  let n = Array.length gates in
  let dag = Dag.of_circuit c in
  let unresolved = Array.make n 0 in
  List.iter
    (fun v -> unresolved.(v) <- List.length (Dag.preds dag v))
    (Dag.nodes dag);
  let front = ref [] in
  for v = n - 1 downto 0 do
    if unresolved.(v) = 0 then front := v :: !front
  done;
  let emitted = ref [] in
  let swaps = ref 0 in
  let decay = Array.make np 0.0 in
  let swaps_since_reset = ref 0 in
  let routable (g : Gate.app) =
    match g.Gate.qubits with
    | [ _ ] -> true
    | [ a; b ] ->
      Coupling.are_coupled cg (Layout.phys layout a) (Layout.phys layout b)
    | _ -> false
  in
  let emit v =
    let g = gates.(v) in
    let phys_gate =
      { g with Gate.qubits = List.map (Layout.phys layout) g.Gate.qubits }
    in
    emitted := phys_gate :: !emitted;
    front := List.filter (fun w -> w <> v) !front;
    List.iter
      (fun s ->
        unresolved.(s) <- unresolved.(s) - 1;
        if unresolved.(s) = 0 then front := s :: !front)
      (Dag.succs dag v)
  in
  (* extended lookahead: the next few not-yet-front 2q gates. The
     visited marks are generation stamps in a route-level array (the
     Dag.reach_ws idiom), not a fresh bool array per call — the set is
     rebuilt at every stalled iteration, and this loop is the router's
     hot path on congested circuits. *)
  let ext_stamp = Array.make n 0 in
  let ext_gen = ref 0 in
  let extended_set () =
    incr ext_gen;
    let stamp_gen = !ext_gen in
    let acc = ref [] and count = ref 0 in
    let rec walk v depth =
      if depth > 0 && !count < ext_size then
        List.iter
          (fun s ->
            if ext_stamp.(s) <> stamp_gen then begin
              ext_stamp.(s) <- stamp_gen;
              (match gates.(s).Gate.qubits with
              | [ _; _ ] when !count < ext_size ->
                acc := s :: !acc;
                incr count
              | _ -> ());
              walk s (depth - 1)
            end)
          (Dag.succs dag v)
    in
    List.iter (fun v -> walk v 3) !front;
    !acc
  in
  let dist_of v lay_probe =
    match gates.(v).Gate.qubits with
    | [ a; b ] -> float_of_int (Coupling.distance cg (lay_probe a) (lay_probe b))
    | _ -> 0.0
  in
  (* safety bound: routing must terminate well within n * np^2 steps *)
  let fuel = ref ((n + 1) * np * np * 4) in
  while !front <> [] do
    decr fuel;
    if !fuel < 0 then failwith "Sabre.route: no progress (disconnected device?)";
    let ready = List.sort compare (List.filter (fun v -> routable gates.(v)) !front) in
    if ready <> [] then List.iter emit ready
    else begin
      let two_q_front =
        List.filter (fun v -> List.length gates.(v).Gate.qubits = 2) !front
      in
      let ext = extended_set () in
      (* candidate swaps: device edges incident to front-gate qubits *)
      let cands = ref [] in
      List.iter
        (fun v ->
          List.iter
            (fun l ->
              let p = Layout.phys layout l in
              List.iter
                (fun p' ->
                  let e = if p < p' then (p, p') else (p', p) in
                  if not (List.mem e !cands) then cands := e :: !cands)
                (Coupling.neighbors cg p))
            gates.(v).Gate.qubits)
        two_q_front;
      let score (a, b) =
        let probe l =
          let p = Layout.phys layout l in
          if p = a then b else if p = b then a else p
        in
        let f_sum =
          List.fold_left (fun acc v -> acc +. dist_of v probe) 0.0 two_q_front
        in
        let e_sum =
          List.fold_left (fun acc v -> acc +. dist_of v probe) 0.0 ext
        in
        let nf = float_of_int (max 1 (List.length two_q_front)) in
        let ne = float_of_int (max 1 (List.length ext)) in
        let decay_factor = 1.0 +. Float.max decay.(a) decay.(b) in
        decay_factor *. ((f_sum /. nf) +. (ext_weight *. e_sum /. ne))
      in
      let best =
        List.sort
          (fun e1 e2 ->
            let s1 = score e1 and s2 = score e2 in
            if s1 <> s2 then compare s1 s2 else compare e1 e2)
          !cands
      in
      match best with
      | [] -> failwith "Sabre.route: stuck with no swap candidates"
      | (a, b) :: _ ->
        Layout.swap_physical layout a b;
        emitted := Gate.app2 Gate.SWAP a b :: !emitted;
        incr swaps;
        decay.(a) <- decay.(a) +. decay_delta;
        decay.(b) <- decay.(b) +. decay_delta;
        incr swaps_since_reset;
        if !swaps_since_reset >= decay_reset then begin
          Array.fill decay 0 np 0.0;
          swaps_since_reset := 0
        end
    end
  done;
  let physical = Circuit.make ~n_qubits:np (List.rev !emitted) in
  Obs.count ~n:!swaps "sabre.swaps";
  { physical; initial = initial_layout; final = layout; swaps_added = !swaps }
