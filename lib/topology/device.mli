(** The device registry: named quantum devices with per-edge coupling
    strengths, per-qubit calibration data and a canonical content hash.

    Everything upstream of this module used to target one hard-coded
    transmon lattice (the paper's 5x5 grid with uniform coupling
    [mu = 0.02] and drive bound [5 mu]). A {!t} generalises that into a
    value: a {!Coupling} graph, one coupling strength per edge, one
    {!qubit_cal} record per qubit, and a {!hash} — an MD5 over the
    canonical [%.17g] serialisation of every physical parameter (the
    name is deliberately excluded, so two devices with identical physics
    hash identically).

    The hash is what keeps the shared pulse {!Paqoc_pulse.Cache} honest
    across devices: {!cache_namespace} prefixes every shared-cache key
    with ["dev:<hash>|"], so a pulse synthesised for one device can
    never be replayed on another — and a {!Drift}-perturbed device,
    whose hash necessarily differs, can never replay its own stale
    pulses. The paper's lattice (and any plain [grid], which carries the
    same uniform calibration) namespaces to the empty string, keeping
    every pre-registry cache file byte-identical.

    See [docs/devices.md] for the registry model and the calibration
    tables of the four built-in devices. *)

(** Per-qubit calibration. [anharmonicity] (GHz, negative for
    transmons) is carried as recalibration metadata: the two-level
    synthesis model does not consume it, but it participates in the
    {!hash}, so an anharmonicity-only recalibration still invalidates
    cached pulses. [drive_bound] is the per-qubit X/Y drive-amplitude
    ceiling the optimiser must respect. *)
type qubit_cal = { anharmonicity : float; drive_bound : float }

(** A calibrated device. [edge_mu] lists one exchange-coupling strength
    per coupling-graph edge, sorted with [a < b] within an edge and
    edges in lexicographic order — the canonical order the {!hash}
    serialises. [qubits] has one calibration record per physical qubit. *)
type t = {
  name : string;
  description : string;
  coupling : Coupling.t;
  edge_mu : ((int * int) * float) list;
  qubits : qubit_cal array;
}

(** {1 Calibration constants}

    The single source of the numbers that were previously duplicated
    between [Hamiltonian] and the GRAPE bounds handling. *)

(** The paper's uniform exchange-coupling strength (0.02). *)
val default_mu : float

(** Drive-amplitude ceiling as a multiple of the coupling strength
    (5.0): a device's default per-qubit drive bound is
    [drive_ratio *. default_mu]. *)
val drive_ratio : float

(** Default transmon anharmonicity metadata (-0.34 GHz). *)
val default_anharmonicity : float

(** {1 The registry} *)

(** The paper's evaluation platform: the 5x5 nearest-neighbour lattice
    with uniform calibration. This is the default device everywhere,
    and the one whose {!cache_namespace} is the empty string. *)
val lattice : t

(** IBM heavy-hexagon lattice of code distance 5 (55 qubits, the
    Eagle/Heron topology) with per-edge calibrated couplings. *)
val heavy_hex : t

(** 6x6 nearest-neighbour grid (36 qubits) with per-edge calibrated
    couplings. *)
val square : t

(** 25-qubit ring with per-edge calibrated couplings. *)
val ring : t

(** The four built-in devices, in registry order:
    [lattice; heavy-hex; square; ring]. *)
val all : t list

(** [find name] looks a built-in device up by name. *)
val find : string -> t option

(** [grid ~rows ~cols] is an ad-hoc rows x cols lattice with the same
    uniform calibration as {!lattice} — [grid ~rows:5 ~cols:5] hashes
    identically to {!lattice}. This is what a bare ["RxC"] [--device]
    spec resolves to. *)
val grid : rows:int -> cols:int -> t

(** {1 Accessors} *)

val name : t -> string
val coupling : t -> Coupling.t
val n_qubits : t -> int

(** [edge_mu_of d a b] is the calibrated coupling strength of edge
    [(a, b)] (order-insensitive).
    @raise Not_found when the qubits are not coupled. *)
val edge_mu_of : t -> int -> int -> float

(** [synthesis_mu d] is the coupling strength the pulse synthesiser
    optimises against: the minimum over [d]'s calibrated edges (the
    conservative choice — a pulse feasible at the weakest coupling is
    feasible everywhere). Exactly {!default_mu} on {!lattice}/{!grid}. *)
val synthesis_mu : t -> float

(** [drive_bound d] is the X/Y drive ceiling the synthesiser respects:
    the minimum per-qubit [drive_bound] over [d]'s qubits. Exactly
    [drive_ratio *. default_mu] on {!lattice}/{!grid}. *)
val drive_bound : t -> float

(** {1 Content hash} *)

(** [hash d] is the canonical content hash (32 hex chars): MD5 over the
    [%.17g] serialisation of qubit count, sorted edges with their
    coupling strengths, and per-qubit calibration. The name and
    description are excluded. Any calibration change — including a
    {!Drift} epoch — changes the hash. *)
val hash : t -> string

(** [cache_namespace d] is the prefix every shared-cache key for [d]
    carries: [""] when [d] hashes identically to {!lattice} (the
    pre-registry byte-compat guarantee), ["dev:<hash>|"] otherwise. *)
val cache_namespace : t -> string

val pp : Format.formatter -> t -> unit
