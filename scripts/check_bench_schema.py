#!/usr/bin/env python3
"""Validate a BENCH_grape.json file against the paqoc-bench v1 schema.

Used by `make bench-smoke` (and CI) to catch drift in the benchmark
emission path: a field rename, a type change or an empty run list fails
here before anyone tries to plot a perf trajectory from broken entries.
"""
import json
import sys

REQUIRED_RUN_FIELDS = {
    "phase": str,
    "case": str,
    "dim": int,
    "n_slices": int,
    "iters": int,
    "repeats": int,
    "ns_per_iter": (int, float),
}


def fail(msg):
    print(f"check_bench_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != "paqoc-bench v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'paqoc-bench v1'")
    if doc.get("bench") != "grape":
        fail(f"{path}: bench is {doc.get('bench')!r}, want 'grape'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: runs must be a non-empty list")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"{path}: runs[{i}] is not an object")
        for field, ty in REQUIRED_RUN_FIELDS.items():
            if field not in run:
                fail(f"{path}: runs[{i}] missing {field!r}")
            if not isinstance(run[field], ty) or isinstance(run[field], bool):
                fail(f"{path}: runs[{i}].{field} has type "
                     f"{type(run[field]).__name__}")
        if run["ns_per_iter"] <= 0:
            fail(f"{path}: runs[{i}].ns_per_iter must be positive")
        if run["dim"] < 1 or run["n_slices"] < 1:
            fail(f"{path}: runs[{i}] has non-positive dim/n_slices")
    print(f"{path}: {len(runs)} runs, schema OK")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        fail("usage: check_bench_schema.py FILE...")
    for p in sys.argv[1:]:
        check(p)
