#!/usr/bin/env python3
"""Validate BENCH_*.json files against the paqoc-bench v1 schemas.

Used by `make bench-smoke` (and CI) to catch drift in the benchmark
emission paths: a field rename, a type change or an empty run list fails
here before anyone tries to plot a perf trajectory from broken entries.
Dispatches on the document's "bench" tag: "grape" (per-iteration GRAPE
cost), "cache" (cold-vs-warm shared-cache suite compile), "search"
(reference-vs-incremental criticality-search trajectory), "serve"
(resident-daemon throughput/latency plus the lazy-pool jobs gate),
"sweep" (variational fast-path speedup plus the interpolation-drift and
replay gates) or "devices" (per-device suite compile on one shared cache
plus the cross-device/drift isolation gates).
"""
import json
import sys

GRAPE_RUN_FIELDS = {
    "phase": str,
    "case": str,
    "dim": int,
    "n_slices": int,
    "iters": int,
    "repeats": int,
    "ns_per_iter": (int, float),
}

CACHE_RUN_FIELDS = {
    "phase": str,
    "wall_s": (int, float),
    "synthesized": int,
    "cache_hits": int,
    "cache_misses": int,
    "hit_rate": (int, float),
    "canonical_hits": int,
    "canonical_hit_rate": (int, float),
    "per_benchmark": list,
}

CACHE_PER_BENCHMARK_FIELDS = {
    "name": str,
    "synthesized": int,
    "cache_hits": int,
    "hit_rate": (int, float),
    "canonical_hits": int,
}


def fail(msg):
    print(f"check_bench_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fields(path, label, obj, fields):
    if not isinstance(obj, dict):
        fail(f"{path}: {label} is not an object")
    for field, ty in fields.items():
        if field not in obj:
            fail(f"{path}: {label} missing {field!r}")
        if not isinstance(obj[field], ty) or isinstance(obj[field], bool):
            fail(f"{path}: {label}.{field} has type "
                 f"{type(obj[field]).__name__}")


def check_grape(path, doc, runs):
    for i, run in enumerate(runs):
        check_fields(path, f"runs[{i}]", run, GRAPE_RUN_FIELDS)
        if run["ns_per_iter"] <= 0:
            fail(f"{path}: runs[{i}].ns_per_iter must be positive")
        if run["dim"] < 1 or run["n_slices"] < 1:
            fail(f"{path}: runs[{i}] has non-positive dim/n_slices")


def check_cache(path, doc, runs):
    n = doc.get("benchmarks")
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        fail(f"{path}: benchmarks must be a positive int")
    phases = []
    for i, run in enumerate(runs):
        check_fields(path, f"runs[{i}]", run, CACHE_RUN_FIELDS)
        phases.append(run["phase"])
        if not 0.0 <= run["hit_rate"] <= 1.0:
            fail(f"{path}: runs[{i}].hit_rate must be in [0,1]")
        if not 0.0 <= run["canonical_hit_rate"] <= 1.0:
            fail(f"{path}: runs[{i}].canonical_hit_rate must be in [0,1]")
        if run["canonical_hits"] > run["cache_hits"]:
            fail(f"{path}: runs[{i}].canonical_hits exceeds cache_hits — "
                 f"class-tier hits are a subset of all hits")
        per = run["per_benchmark"]
        if len(per) != n:
            fail(f"{path}: runs[{i}].per_benchmark has {len(per)} entries, "
                 f"want {n}")
        for j, b in enumerate(per):
            check_fields(path, f"runs[{i}].per_benchmark[{j}]", b,
                         CACHE_PER_BENCHMARK_FIELDS)
    if phases != ["cold", "warm"]:
        fail(f"{path}: run phases are {phases}, want ['cold', 'warm']")
    rate = doc.get("synthesis_skip_rate")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        fail(f"{path}: synthesis_skip_rate must be a number")
    if not 0.0 <= rate <= 1.0:
        fail(f"{path}: synthesis_skip_rate must be in [0,1]")


SEARCH_RUN_FIELDS = {
    "phase": str,
    "temp": str,
    "wall_s": (int, float),
    "suite_latency": (int, float),
    "iterations": int,
    "merges_committed": int,
    "per_benchmark": list,
}

SEARCH_PER_BENCHMARK_FIELDS = {
    "name": str,
    "latency": (int, float),
    "wall_s": (int, float),
}


def check_search(path, doc, runs):
    n = doc.get("benchmarks")
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        fail(f"{path}: benchmarks must be a positive int")
    keys = []
    for i, run in enumerate(runs):
        check_fields(path, f"runs[{i}]", run, SEARCH_RUN_FIELDS)
        keys.append((run["phase"], run["temp"]))
        if run["wall_s"] <= 0:
            fail(f"{path}: runs[{i}].wall_s must be positive")
        per = run["per_benchmark"]
        if len(per) != n:
            fail(f"{path}: runs[{i}].per_benchmark has {len(per)} entries, "
                 f"want {n}")
        for j, b in enumerate(per):
            check_fields(path, f"runs[{i}].per_benchmark[{j}]", b,
                         SEARCH_PER_BENCHMARK_FIELDS)
    want = [("before", "cold"), ("before", "warm"),
            ("after", "cold"), ("after", "warm")]
    if keys != want:
        fail(f"{path}: run (phase, temp) pairs are {keys}, want {want}")
    for field in ("warm_speedup", "cold_speedup"):
        v = doc.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
            fail(f"{path}: {field} must be a positive number")
    if doc.get("latencies_identical") is not True:
        fail(f"{path}: latencies_identical must be true — the two searches "
             f"diverged")
    # the committed trajectory must actually show the win it claims
    if doc["warm_speedup"] < 1.0:
        fail(f"{path}: warm_speedup {doc['warm_speedup']} < 1 — the "
             f"incremental engine is slower than the reference")


SERVE_RUN_FIELDS = {
    "phase": str,
    "wall_s": (int, float),
    "requests": int,
    "requests_per_s": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "synthesized": int,
    "cache_hits": int,
    "cache_misses": int,
    "hit_rate": (int, float),
}


def check_serve(path, doc, runs):
    n = doc.get("benchmarks")
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        fail(f"{path}: benchmarks must be a positive int")
    phases = []
    for i, run in enumerate(runs):
        check_fields(path, f"runs[{i}]", run, SERVE_RUN_FIELDS)
        phases.append(run["phase"])
        if run["wall_s"] <= 0 or run["requests_per_s"] <= 0:
            fail(f"{path}: runs[{i}] wall_s/requests_per_s must be positive")
        if run["requests"] != n:
            fail(f"{path}: runs[{i}].requests is {run['requests']}, want {n}")
        if not 0.0 <= run["hit_rate"] <= 1.0:
            fail(f"{path}: runs[{i}].hit_rate must be in [0,1]")
        if run["p50_ms"] <= 0 or run["p95_ms"] < run["p50_ms"]:
            fail(f"{path}: runs[{i}] needs 0 < p50_ms <= p95_ms")
    if phases != ["cold", "warm"]:
        fail(f"{path}: run phases are {phases}, want ['cold', 'warm']")
    warm = runs[1]
    # a warm daemon answers everything from the shared cache
    if warm["synthesized"] != 0:
        fail(f"{path}: warm run synthesized {warm['synthesized']} pulses, "
             f"want 0 — the daemon's shared cache is not being hit")
    if warm["hit_rate"] != 1.0:
        fail(f"{path}: warm hit_rate is {warm['hit_rate']}, want 1.0")
    for field in ("warm_jobs1_wall_s", "warm_jobs4_wall_s", "warm_jobs_ratio"):
        v = doc.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
            fail(f"{path}: {field} must be a positive number")
    # the lazy-pool guarantee: an all-cache-hit suite at --jobs 4 must not
    # pay for idle worker domains (±10%)
    if doc["warm_jobs_ratio"] > 1.1:
        fail(f"{path}: warm_jobs_ratio {doc['warm_jobs_ratio']} > 1.1 — "
             f"warm --jobs 4 is paying for worker domains again")
    if doc.get("byte_identical") is not True:
        fail(f"{path}: byte_identical must be true — daemon rows diverged "
             f"from the in-process path")


SWEEP_RUN_FIELDS = {
    "phase": str,
    "tol": (int, float),
    "iterations": int,
    "interp": int,
    "fallback": int,
    "resynth": int,
    "checks": int,
    "max_drift": (int, float),
}


def check_sweep(path, doc, runs):
    phases = []
    for i, run in enumerate(runs):
        check_fields(path, f"runs[{i}]", run, SWEEP_RUN_FIELDS)
        phases.append(run["phase"])
        if run["iterations"] < 1:
            fail(f"{path}: runs[{i}].iterations must be positive")
        if run["max_drift"] > run["tol"]:
            fail(f"{path}: runs[{i}].max_drift {run['max_drift']} exceeds "
                 f"its tolerance {run['tol']} — an over-drift interpolation "
                 f"was accepted instead of falling back")
    want = ["model", "qoc-strict", "qoc-loose"]
    if phases != want:
        fail(f"{path}: run phases are {phases}, want {want}")
    for field in ("freeze_s", "full_iter_s", "fast_iter_s", "speedup"):
        v = doc.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
            fail(f"{path}: {field} must be a positive number")
    rate = doc.get("interp_hit_rate")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        fail(f"{path}: interp_hit_rate must be a number")
    if not 0.0 <= rate <= 1.0:
        fail(f"{path}: interp_hit_rate must be in [0,1]")
    # the headline claim: the frozen-plan fast path is >= 10x a full
    # per-iteration recompile
    if doc["speedup"] < 10.0:
        fail(f"{path}: speedup {doc['speedup']} < 10 — the parametric "
             f"fast path lost its advantage")
    # the differential claim: the loose pass accepted interpolations and
    # replaying their stored pulses reproduced the recorded fidelities
    if runs[2]["checks"] < 1:
        fail(f"{path}: qoc-loose accepted no interpolations — the "
             f"differential gate is vacuous")
    err = doc.get("qoc_replay_err")
    if not isinstance(err, (int, float)) or isinstance(err, bool):
        fail(f"{path}: qoc_replay_err must be a number")
    if err > 1e-12:
        fail(f"{path}: qoc_replay_err {err} > 1e-12 — re-simulating stored "
             f"check pulses no longer reproduces their fidelities")


DEVICES_RUN_FIELDS = {
    "phase": str,
    "wall_s": (int, float),
    "synthesized": int,
    "cache_hits": int,
    "cache_misses": int,
    "hit_rate": (int, float),
}

DEVICES_DEVICE_FIELDS = {
    "name": str,
    "hash": str,
    "qubits": int,
    "runs": list,
}

DEVICES_DRIFT_FIELDS = {
    "seed": int,
    "epoch": int,
    "wall_s": (int, float),
    "synthesized": int,
    "cache_hits": int,
    "cache_misses": int,
}


def check_devices(path, doc, devices):
    n = doc.get("benchmarks")
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        fail(f"{path}: benchmarks must be a positive int")
    names = []
    hashes = []
    for i, dev in enumerate(devices):
        check_fields(path, f"devices[{i}]", dev, DEVICES_DEVICE_FIELDS)
        names.append(dev["name"])
        hashes.append(dev["hash"])
        if len(dev["hash"]) != 32:
            fail(f"{path}: devices[{i}].hash is not 32 hex chars")
        if dev["qubits"] < 1:
            fail(f"{path}: devices[{i}].qubits must be positive")
        phases = []
        for j, run in enumerate(dev["runs"]):
            check_fields(path, f"devices[{i}].runs[{j}]", run,
                         DEVICES_RUN_FIELDS)
            phases.append(run["phase"])
            if not 0.0 <= run["hit_rate"] <= 1.0:
                fail(f"{path}: devices[{i}].runs[{j}].hit_rate must be "
                     f"in [0,1]")
        if phases != ["cold", "warm"]:
            fail(f"{path}: devices[{i}] run phases are {phases}, "
                 f"want ['cold', 'warm']")
        warm = dev["runs"][1]
        # fallbacks are never published, so every warm miss must be a
        # regenerated pulse — a surplus miss means a pulse was lost
        if warm["cache_misses"] != warm["synthesized"]:
            fail(f"{path}: devices[{i}] warm pass lost "
                 f"{warm['cache_misses'] - warm['synthesized']} pulses")
    if names != ["lattice", "heavy-hex", "square", "ring"]:
        fail(f"{path}: device names are {names}, want the registry order")
    if len(set(hashes)) != len(hashes):
        fail(f"{path}: device hashes are not distinct")
    drift = doc.get("drift")
    check_fields(path, "drift", drift, DEVICES_DRIFT_FIELDS)
    # the recalibration guarantee: a drifted lattice against the fully
    # warmed cache misses exactly as often as the pristine cold pass did
    cold_misses = devices[0]["runs"][0]["cache_misses"]
    if drift["cache_misses"] != cold_misses:
        fail(f"{path}: drifted lattice missed {drift['cache_misses']} "
             f"lookups vs {cold_misses} cold — stale pulses were replayed")
    if doc.get("isolated") is not True:
        fail(f"{path}: isolated must be true — cross-device isolation "
             f"was not upheld")


CHECKERS = {"grape": check_grape, "cache": check_cache,
            "search": check_search, "serve": check_serve,
            "sweep": check_sweep, "devices": check_devices}

# most benches list their runs under "runs"; the devices bench groups
# runs per device under "devices"
RUN_LIST_KEY = {"devices": "devices"}


def check(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != "paqoc-bench v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'paqoc-bench v1'")
    bench = doc.get("bench")
    if bench not in CHECKERS:
        fail(f"{path}: bench is {bench!r}, want one of "
             f"{sorted(CHECKERS)}")
    key = RUN_LIST_KEY.get(bench, "runs")
    runs = doc.get(key)
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: {key} must be a non-empty list")
    CHECKERS[bench](path, doc, runs)
    print(f"{path}: bench {bench!r}, {len(runs)} {key}, schema OK")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        fail("usage: check_bench_schema.py FILE...")
    for p in sys.argv[1:]:
        check(p)
