open Test_util
module V = Paqoc.Variational
module Gen = Paqoc_pulse.Generator
module Qaoa = Paqoc_benchmarks.Qaoa

let ansatz = Qaoa.circuit ~symbolic:true ~n:6 ~p:1 ()

let bindings k = [ ("gamma_0", 0.3 +. (0.1 *. float_of_int k)); ("beta_0", 0.8) ]

let suite =
  [ case "offline phase mines the symbolic ansatz" (fun () ->
        let p = V.prepare ansatz in
        check_true "found APA gates" (V.apa_gates p <> []));
    case "online compile matches direct compilation semantics" (fun () ->
        let p = V.prepare ansatz in
        let gen = Gen.model_default () in
        let r = V.compile p gen (bindings 0) in
        let direct = Circuit.bind_params (bindings 0) ansatz in
        check_true "equivalent"
          (Circuit.equivalent direct (Circuit.flatten r.Paqoc.grouped)));
    case "iterations amortise the pulse database" (fun () ->
        let p = V.prepare ansatz in
        let gen = Gen.model_default () in
        let r1 = V.compile p gen (bindings 1) in
        let r2 = V.compile p gen (bindings 1) in
        (* identical parameters: everything cache-hits *)
        check_true "second iteration cheaper"
          (r2.Paqoc.compile_seconds < r1.Paqoc.compile_seconds);
        check_int "no new pulses" 0 r2.Paqoc.pulses_generated;
        (* different parameters: structure warm starts still help *)
        let r3 = V.compile p gen (bindings 2) in
        check_true "new params still cheaper than cold"
          (r3.Paqoc.compile_seconds < r1.Paqoc.compile_seconds +. 1e-9));
    case "unbound parameters are rejected with their names" (fun () ->
        let p = V.prepare ansatz in
        let gen = Gen.model_default () in
        check_true "raises with the missing name"
          (try ignore (V.compile p gen [ ("gamma_0", 0.1) ]); false
           with V.Unbound_parameters missing -> missing = [ "beta_0" ]));
    case "latency does not depend on the iteration" (fun () ->
        let p = V.prepare ansatz in
        let gen = Gen.model_default () in
        let r1 = V.compile p gen (bindings 3) in
        let gen2 = Gen.model_default () in
        let r2 = V.compile p gen2 (bindings 3) in
        check_float "deterministic" r1.Paqoc.latency r2.Paqoc.latency)
  ]
