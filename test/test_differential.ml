(* Differential verification: the fidelity the generator records in its
   pulse database must be reproducible from the committed waveform alone.
   Every check re-simulates a pulse under the exact Hamiltonian it was
   optimised against and compares with the recorded number at 1e-6 — a
   drift here means the database is lying about its own pulses. *)
open Test_util
module Gen = Paqoc_pulse.Generator
module Pulse = Paqoc_pulse.Pulse
module Sim = Paqoc_pulse.Simulator
module Fidelity = Paqoc_linalg.Fidelity

let group apps = fst (Gen.group_of_apps apps)

(* re-derive a committed outcome's fidelity from its waveform *)
let resimulate (g : Gen.group) (o : Gen.outcome) =
  match o.Gen.pulse with
  | None -> Alcotest.fail "outcome carries no waveform to verify"
  | Some p ->
    let h = Gen.hamiltonian_of g in
    let target =
      Gate.unitary_of_apps ~n_qubits:g.Gen.n_qubits g.Gen.gates
    in
    Fidelity.gate_fidelity target (Pulse.propagator h p)

let check_consistent name g o =
  let replayed = resimulate g o in
  let drift = abs_float (replayed -. o.Gen.fidelity) in
  check_true
    (Printf.sprintf "%s: recorded %.8f vs replayed %.8f (drift %.2e)" name
       o.Gen.fidelity replayed drift)
    (drift < 1e-6)

let suite =
  [ slow_case "recorded fidelities replay from the waveform (1e-6)"
      (fun () ->
        let gen = Gen.qoc_default () in
        List.iter
          (fun (name, apps) ->
            let g = group apps in
            let o = Gen.generate gen g in
            check_true (name ^ " carries a pulse") (o.Gen.pulse <> None);
            check_consistent name g o)
          [ ("x", [ Gate.app1 Gate.X 0 ]);
            ("h", [ Gate.app1 Gate.H 0 ]);
            ("cx", [ Gate.app2 Gate.CX 0 1 ]);
            ("merged h;cx", [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ])
          ]);
    slow_case "batch-committed pulses verify against the database" (fun () ->
        (* parallel generation must commit pulses whose recorded fidelity
           is just as replayable as serial ones; read them back through
           the database (peek), not the in-flight outcomes *)
        let gen = Gen.qoc_default () in
        let groups =
          [ group [ Gate.app2 Gate.CX 0 1 ];
            group [ Gate.app1 Gate.X 0; Gate.app1 Gate.H 1 ];
            group [ Gate.app2 Gate.CZ 0 1; Gate.app1 Gate.X 0 ]
          ]
        in
        ignore (Gen.generate_batch ~jobs:2 gen groups);
        List.iteri
          (fun i g ->
            match Gen.peek gen g with
            | None -> Alcotest.failf "group %d missing from the database" i
            | Some o ->
              check_consistent (Printf.sprintf "group %d" i) g o)
          groups);
    slow_case "whole-circuit pulse evolution matches recorded errors"
      (fun () ->
        (* the recorded per-group infidelities must predict the simulator's
           measured whole-circuit fidelity: 1 - sum(eps) is a first-order
           lower bound, so the measurement may exceed it but never
           undershoot materially *)
        let gen = Gen.qoc_default () in
        let c =
          Circuit.make ~n_qubits:2
            [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ]
        in
        let measured = Sim.process_fidelity gen c in
        let predicted =
          List.fold_left
            (fun acc a -> acc -. (Gen.generate gen (group [ a ])).Gen.error)
            1.0 c.Circuit.gates
        in
        check_true
          (Printf.sprintf "measured %.5f >= predicted %.5f - 1e-3" measured
             predicted)
          (measured >= predicted -. 1e-3));
    case "model-backend outcomes are self-consistent" (fun () ->
        (* the analytic backend has no waveform, but its recorded fidelity
           must still equal 1 - error exactly, and peek must return the
           committed entry unchanged *)
        let gen = Gen.model_default () in
        let g =
          group [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ]
        in
        let o = Gen.generate gen g in
        check_float "fidelity = 1 - error" (1.0 -. o.Gen.error) o.Gen.fidelity;
        match Gen.peek gen g with
        | None -> Alcotest.fail "committed entry not peekable"
        | Some p ->
          check_float "peek latency" o.Gen.latency p.Gen.latency;
          check_float "peek error" o.Gen.error p.Gen.error;
          check_true "peek provenance"
            (p.Gen.provenance = o.Gen.provenance))
  ]
