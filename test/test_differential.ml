(* Differential verification: the fidelity the generator records in its
   pulse database must be reproducible from the committed waveform alone.
   Every check re-simulates a pulse under the exact Hamiltonian it was
   optimised against and compares with the recorded number at 1e-6 — a
   drift here means the database is lying about its own pulses.

   The interpolation-fidelity battery extends the same discipline to the
   variational fast path: every interpolated pulse an accepted sweep
   iteration ships is replayed under its group's Hamiltonian, and the
   result must reproduce the [measured] fidelity recompile recorded at
   acceptance time — while |predicted - measured| stays within the
   tolerance the acceptance claimed. *)
open Test_util
module Gen = Paqoc_pulse.Generator
module Pulse = Paqoc_pulse.Pulse
module Sim = Paqoc_pulse.Simulator
module Fidelity = Paqoc_linalg.Fidelity
module Cache = Paqoc_pulse.Cache
module Hamiltonian = Paqoc_pulse.Hamiltonian
module Suite = Paqoc_benchmarks.Suite
module V = Paqoc.Variational
module Qaoa = Paqoc_benchmarks.Qaoa
module Dnn = Paqoc_benchmarks.Dnn

let group apps = fst (Gen.group_of_apps apps)

(* re-derive a committed outcome's fidelity from its waveform *)
let resimulate (g : Gen.group) (o : Gen.outcome) =
  match o.Gen.pulse with
  | None -> Alcotest.fail "outcome carries no waveform to verify"
  | Some p ->
    let h = Gen.hamiltonian_of g in
    let target =
      Gate.unitary_of_apps ~n_qubits:g.Gen.n_qubits g.Gen.gates
    in
    Fidelity.gate_fidelity target (Pulse.propagator h p)

let check_consistent name g o =
  let replayed = resimulate g o in
  let drift = abs_float (replayed -. o.Gen.fidelity) in
  check_true
    (Printf.sprintf "%s: recorded %.8f vs replayed %.8f (drift %.2e)" name
       o.Gen.fidelity replayed drift)
    (drift < 1e-6)

let suite =
  [ slow_case "recorded fidelities replay from the waveform (1e-6)"
      (fun () ->
        let gen = Gen.qoc_default () in
        List.iter
          (fun (name, apps) ->
            let g = group apps in
            let o = Gen.generate gen g in
            check_true (name ^ " carries a pulse") (o.Gen.pulse <> None);
            check_consistent name g o)
          [ ("x", [ Gate.app1 Gate.X 0 ]);
            ("h", [ Gate.app1 Gate.H 0 ]);
            ("cx", [ Gate.app2 Gate.CX 0 1 ]);
            ("merged h;cx", [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ])
          ]);
    slow_case "batch-committed pulses verify against the database" (fun () ->
        (* parallel generation must commit pulses whose recorded fidelity
           is just as replayable as serial ones; read them back through
           the database (peek), not the in-flight outcomes *)
        let gen = Gen.qoc_default () in
        let groups =
          [ group [ Gate.app2 Gate.CX 0 1 ];
            group [ Gate.app1 Gate.X 0; Gate.app1 Gate.H 1 ];
            group [ Gate.app2 Gate.CZ 0 1; Gate.app1 Gate.X 0 ]
          ]
        in
        ignore (Gen.generate_batch ~jobs:2 gen groups);
        List.iteri
          (fun i g ->
            match Gen.peek gen g with
            | None -> Alcotest.failf "group %d missing from the database" i
            | Some o ->
              check_consistent (Printf.sprintf "group %d" i) g o)
          groups);
    slow_case "whole-circuit pulse evolution matches recorded errors"
      (fun () ->
        (* the recorded per-group infidelities must predict the simulator's
           measured whole-circuit fidelity: 1 - sum(eps) is a first-order
           lower bound, so the measurement may exceed it but never
           undershoot materially *)
        let gen = Gen.qoc_default () in
        let c =
          Circuit.make ~n_qubits:2
            [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ]
        in
        let measured = Sim.process_fidelity gen c in
        let predicted =
          List.fold_left
            (fun acc a -> acc -. (Gen.generate gen (group [ a ])).Gen.error)
            1.0 c.Circuit.gates
        in
        check_true
          (Printf.sprintf "measured %.5f >= predicted %.5f - 1e-3" measured
             predicted)
          (measured >= predicted -. 1e-3));
    case "model-backend outcomes are self-consistent" (fun () ->
        (* the analytic backend has no waveform, but its recorded fidelity
           must still equal 1 - error exactly, and peek must return the
           committed entry unchanged *)
        let gen = Gen.model_default () in
        let g =
          group [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ]
        in
        let o = Gen.generate gen g in
        check_float "fidelity = 1 - error" (1.0 -. o.Gen.error) o.Gen.fidelity;
        match Gen.peek gen g with
        | None -> Alcotest.fail "committed entry not peekable"
        | Some p ->
          check_float "peek latency" o.Gen.latency p.Gen.latency;
          check_float "peek error" o.Gen.error p.Gen.error;
          check_true "peek provenance"
            (p.Gen.provenance = o.Gen.provenance));
    (* ---- canonicalization: replayed class-mate pulses ---- *)
    slow_case "canonical replays re-simulate within 1e-6 (qoc)" (fun () ->
        (* a class hit replays the representative's waveform under the
           local-frame correction recorded alongside it; re-simulating
           that corrected pulse against the CLASS-MATE's target must
           reproduce the recorded fidelity (which is the representative's
           — the trace fidelity is invariant under the correction) *)
        let cache = Cache.create () in
        let gen = Gen.qoc_default () in
        Gen.set_shared_cache gen (Some cache);
        Gen.set_canonical gen true;
        let groups =
          [ group [ Gate.app1 Gate.H 0 ];
            group [ Gate.app1 Gate.SX 0 ];
            group [ Gate.app2 Gate.CX 0 1 ];
            group [ Gate.app2 Gate.CZ 0 1 ];
            group
              [ Gate.app1 Gate.T 0; Gate.app1 Gate.H 1;
                Gate.app2 Gate.CX 0 1; Gate.app1 Gate.SX 1 ]
          ]
        in
        ignore (Gen.generate_batch ~jobs:1 gen groups);
        let replays = Gen.canonical_replays gen in
        (* SX replays H; CZ and the dressed block replay CX *)
        check_int "three class-mates replayed" 3 (List.length replays);
        List.iter
          (fun g ->
            match List.assoc_opt (Gen.key g) replays with
            | None -> () (* a representative, not a replay *)
            | Some rp -> (
              let o =
                match Gen.peek gen g with
                | Some o -> o
                | None -> Alcotest.fail "replayed outcome not committed"
              in
              check_true "committed as a cache hit" o.Gen.cache_hit;
              check_mat_phase ~tol:1e-9 "recorded target is the group's"
                (Gate.unitary_of_apps ~n_qubits:g.Gen.n_qubits g.Gen.gates)
                rp.Gen.target;
              match rp.Gen.rep_pulse with
              | None -> Alcotest.fail "replay carries no waveform"
              | Some p ->
                let u_p = Pulse.propagator (Gen.hamiltonian_of g) p in
                let corrected =
                  Cmat.mul rp.Gen.correction_l
                    (Cmat.mul u_p rp.Gen.correction_r)
                in
                let f = Fidelity.gate_fidelity rp.Gen.target corrected in
                let drift = abs_float (f -. o.Gen.fidelity) in
                check_true
                  (Printf.sprintf
                     "%s: recorded %.8f vs replayed %.8f (drift %.2e)"
                     (Gen.key g) o.Gen.fidelity f drift)
                  (drift < 1e-6)))
          groups);
    slow_case "bb84 canonical compile: every replayed pulse re-simulates"
      (fun () ->
        (* end-to-end through Paqoc.compile with --canonical-cache
           semantics: bb84's merged 1q groups collapse to a few classes,
           so the batch replays class-mates of pulses synthesized moments
           earlier. Each replay must survive re-simulation. *)
        let physical =
          (Suite.transpiled (Suite.find "bb84"))
            .Paqoc_topology.Transpile.physical
        in
        let cache = Cache.create () in
        let gen = Gen.qoc_default () in
        ignore (Paqoc.compile ~cache ~canonical:true gen physical);
        let replays = Gen.canonical_replays gen in
        check_true "bb84 replayed at least one class-mate"
          (List.length replays > 0);
        List.iter
          (fun (key, rp) ->
            check_int "bb84 replays are 1-qubit" 2 (Cmat.rows rp.Gen.target);
            let rep =
              match Cache.probe cache rp.Gen.rep_key with
              | Some e -> e
              | None -> Alcotest.failf "%s: representative not published" key
            in
            match rp.Gen.rep_pulse with
            | None -> Alcotest.failf "%s: replay carries no waveform" key
            | Some p ->
              let h =
                Hamiltonian.make ~n_qubits:1 ~coupled_pairs:[] ()
              in
              let corrected =
                Cmat.mul rp.Gen.correction_l
                  (Cmat.mul (Pulse.propagator h p) rp.Gen.correction_r)
              in
              let f = Fidelity.gate_fidelity rp.Gen.target corrected in
              let drift = abs_float (f -. rep.Cache.fidelity) in
              check_true
                (Printf.sprintf
                   "%s: recorded %.8f vs replayed %.8f (drift %.2e)" key
                   rep.Cache.fidelity f drift)
                (drift < 1e-6))
          replays);
    slow_case "canonical publishes are jobs-invariant over the suite"
      (fun () ->
        (* the v4 class section must be byte-identical between --jobs 1
           and --jobs 4, and so must every compile result row: the
           first-publisher-wins representative choice may not depend on
           worker scheduling *)
        let with_tmp f =
          let path = Filename.temp_file "paqoc_canon_suite" ".db" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () -> f path)
        in
        let read_file path =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let run jobs path =
          let rows =
            Cache.with_file path (fun cache ->
                List.map
                  (fun e ->
                    let gen = Gen.model_default () in
                    let r =
                      Paqoc.compile ~cache ~canonical:true ~jobs gen
                        (Suite.transpiled e).Paqoc_topology.Transpile
                          .physical
                    in
                    (e.Suite.name, r.Paqoc.latency, r.Paqoc.esp,
                     r.Paqoc.pulses_generated))
                  Suite.all)
          in
          (rows, read_file path)
        in
        with_tmp @@ fun p1 ->
        with_tmp @@ fun p4 ->
        let rows1, bytes1 = run 1 p1 in
        let rows4, bytes4 = run 4 p4 in
        check_true "result rows identical across jobs" (rows1 = rows4);
        check_true "cache bytes identical across jobs"
          (String.equal bytes1 bytes4);
        check_true "the suite cache is a v4 file"
          (String.sub bytes1 0 17 = "paqoc-pulse-db v4"))
    (* ---- the interpolation-fidelity battery (parametric fast path) ---- *);
    slow_case "interpolation battery: three ansatz sweeps replay exactly"
      (fun () ->
        (* freeze each parameterised ansatz with a sparse anchor grid and
           sweep it at a tolerance loose enough that interpolations are
           actually accepted; then hold every shipped check pulse to the
           database's own standard — re-simulating it must reproduce the
           recorded measured fidelity, and the recorded predicted-vs-
           measured drift must stay within the accepted tolerance *)
        let interp_tol = 0.1 in
        List.iter
          (fun (name, circ) ->
            let gen = Gen.qoc_default () in
            let plan = V.freeze ~anchors:3 (V.prepare circ) gen in
            let sweep = V.sweep_angles ~seed:7 ~n:2 (V.plan_params plan) in
            let checks =
              List.concat_map
                (fun angles ->
                  (V.recompile ~interp_tol plan gen ~angles).V.checks)
                sweep
            in
            check_true (name ^ ": battery is not vacuous") (checks <> []);
            List.iter
              (fun (c : V.check) ->
                let drift = abs_float (c.V.predicted -. c.V.measured) in
                check_true
                  (Printf.sprintf
                     "%s %s: accepted drift %.2e within tol %.0e" name
                     c.V.check_key drift interp_tol)
                  (drift <= interp_tol);
                let grp = c.V.check_group in
                let target =
                  Gate.unitary_of_apps ~n_qubits:grp.Gen.n_qubits
                    grp.Gen.gates
                in
                let resim =
                  Fidelity.gate_fidelity target
                    (Pulse.propagator (Gen.hamiltonian_of grp)
                       c.V.check_pulse)
                in
                let replay = abs_float (resim -. c.V.measured) in
                check_true
                  (Printf.sprintf
                     "%s %s: recorded %.8f vs replayed %.8f (drift %.2e)"
                     name c.V.check_key c.V.measured resim replay)
                  (replay < 1e-9))
              checks)
          (* three shapes with genuinely interpolatable (single-parameter)
             slots: logical qaoa, the same ansatz re-shaped by grid
             transpilation, and the dense QNN. VQE is absent by necessity:
             its Rx·Rz-per-qubit layers always merge into multi-parameter
             groups, which resynthesise instead of interpolating. *)
          [ ("qaoa", Qaoa.circuit ~symbolic:true ~n:6 ~p:1 ());
            ( "qaoa-grid",
              (Paqoc_topology.Transpile.run
                 ~coupling:(Paqoc_topology.Coupling.grid ~rows:5 ~cols:5)
                 (Qaoa.circuit ~symbolic:true ~n:4 ~p:1 ()))
                .Paqoc_topology.Transpile.physical );
            ("dnn", Dnn.circuit ~symbolic:true ~n:3 ~blocks:1 ())
          ]);
    slow_case "a hostile angle falls back, publishes and adopts" (fun () ->
        (* 7.0 lies above the [0, 2pi] anchor hull, so every single-
           parameter slot must refuse to extrapolate: real synthesis,
           published to the generator's shared cache, adopted as a new
           anchor — so the repeat iteration is served from the table *)
        let cache = Cache.create () in
        let gen = Gen.qoc_default () in
        Gen.set_shared_cache gen (Some cache);
        let plan =
          V.freeze ~anchors:3
            (V.prepare (Dnn.circuit ~symbolic:true ~n:3 ~blocks:1 ()))
            gen
        in
        let before = (Cache.stats cache).Cache.publishes in
        let angles = List.map (fun p -> (p, 7.0)) (V.plan_params plan) in
        let it = V.recompile plan gen ~angles in
        check_true "hull violation forces fallbacks" (it.V.fallback > 0);
        check_int "nothing interpolates outside the hull" 0 it.V.interp;
        check_true "fallback syntheses publish to the shared cache"
          ((Cache.stats cache).Cache.publishes > before);
        let it2 = V.recompile plan gen ~angles in
        check_int "adopted anchors serve the repeat" 0 it2.V.fallback;
        check_true "the repeat comes from the anchor table"
          (it2.V.interp > 0))
  ]
