(* Observability layer: span nesting, cross-domain merging, the
   disabled-sink no-op guarantee and the deterministic JSON report
   structure the CLI's --metrics/--trace dumps are built on. *)
open Test_util
module Obs = Paqoc_obs.Obs
module Clock = Paqoc_obs.Clock
module Pool = Paqoc_pulse.Pool

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

let finally_reset f = Fun.protect ~finally:Obs.reset f

let suite =
  [ case "spans nest and are recorded per name" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        let v =
          Obs.with_span "outer" (fun () ->
              Obs.with_span "inner" (fun () -> 41) + 1)
        in
        check_int "value flows through" 42 v;
        check_int "outer recorded" 1 (Obs.span_count "outer");
        check_int "inner recorded" 1 (Obs.span_count "inner");
        check_true "trace has both"
          (let t = Obs.trace_json () in
           contains ~needle:"\"outer\"" t && contains ~needle:"\"inner\"" t));
    case "spans are recorded even when the body raises" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        (try Obs.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        check_int "span recorded" 1 (Obs.span_count "boom"));
    case "counters merge across domains" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Obs.count ~n:2 "shared";
        let ds =
          List.init 3 (fun _ ->
              Domain.spawn (fun () -> Obs.count ~n:5 "shared"))
        in
        List.iter Domain.join ds;
        check_int "merged sum" 17 (Obs.counter_value "shared"));
    case "worker-domain spans survive the domain's death" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Domain.join
          (Domain.spawn (fun () -> Obs.with_span "worker" (fun () -> ())));
        check_int "span survived" 1 (Obs.span_count "worker"));
    case "disabled sink is a no-op" (fun () ->
        finally_reset @@ fun () ->
        Obs.reset ();
        check_true "disabled" (not (Obs.enabled ()));
        Obs.count "c";
        Obs.gauge "g" 1.0;
        Obs.observe "h" 1.0;
        check_int "no span, value intact" 7 (Obs.with_span "s" (fun () -> 7));
        check_int "no counter" 0 (Obs.counter_value "c");
        check_true "no gauge" (Obs.gauge_last "g" = None);
        check_int "no histogram" 0 (Obs.hist_count "h");
        check_int "no span" 0 (Obs.span_count "s"));
    case "enable clears previously recorded data" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Obs.count ~n:9 "c";
        Obs.enable ();
        check_int "fresh" 0 (Obs.counter_value "c"));
    case "json report golden (deterministic subset)" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Obs.count ~n:2 "a.b";
        Obs.count "a.b";
        Obs.gauge "q" 2.5;
        Obs.observe "h" 1.0;
        Obs.observe "h" 3.0;
        let expected =
          Printf.sprintf
            "{\"schema\":\"paqoc-metrics v1\",\"counters\":{\"a.b\":3},\
             \"gauges\":{\"q\":{\"last\":2.5,\"max\":2.5}},\
             \"histograms\":{\"h\":{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\
             \"mean\":2}},\"spans\":{},\"domains\":[%d]}"
            (Domain.self () :> int)
        in
        Alcotest.check Alcotest.string "golden report" expected
          (Obs.report_json ()));
    case "report dumps are atomic files" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Obs.count "c";
        let path = Filename.temp_file "paqoc_obs" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Obs.write_report path;
            check_true "no tmp left" (not (Sys.file_exists (path ^ ".tmp")));
            let ic = open_in path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            check_true "is the report" (String.equal s (Obs.report_json ()))));
    case "pool reports per-worker busy/idle and task spans" (fun () ->
        finally_reset @@ fun () ->
        Obs.enable ();
        Pool.with_pool ~jobs:2 (fun p ->
            ignore (Pool.map p (fun x -> x * x) (Array.init 8 Fun.id)));
        check_int "one busy total per worker" 2
          (Obs.hist_count "pool.worker.busy_s");
        check_int "one idle total per worker" 2
          (Obs.hist_count "pool.worker.idle_s");
        check_int "every task became a span" 8 (Obs.span_count "pool.task");
        check_true "queue depth was gauged"
          (Obs.gauge_last "pool.queue_depth" <> None));
    case "clock measures wall time, not process CPU time" (fun () ->
        (* the Sys.time bug this repo shipped with: a sleeping task burns
           no CPU, so CPU-clock accounting reports ~0 for it; wall-clock
           accounting must report the elapsed time *)
        let w0 = Clock.now_s () in
        let c0 = Sys.time () in
        Unix.sleepf 0.05;
        let wall = Clock.now_s () -. w0 in
        let cpu = Sys.time () -. c0 in
        check_true "wall clock saw the sleep" (wall >= 0.045);
        check_true "cpu clock (the old bug) did not" (cpu < wall))
  ]
