(* The compile daemon: protocol codec round-trips, frame hardening, lazy
   pool spawning, concurrent multi-client serving, typed deadline and
   overload refusals, shutdown-persists-cache, interrupt cleanup, and
   client-vs-in-process byte identity. *)
open Test_util
module Protocol = Paqoc_pulse.Protocol
module Server = Paqoc_pulse.Server
module Pool = Paqoc_pulse.Pool
module Cache = Paqoc_pulse.Cache
module Db = Paqoc_pulse.Db_format
module Faultin = Paqoc_pulse.Faultin
module Service = Paqoc_service.Service

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_name suffix =
  let path = Filename.temp_file "paqoc_srv" suffix in
  Sys.remove path;
  path

(* Run a daemon around [f]: server on its own thread, [f] gets the socket
   path, shutdown + join always happen. *)
let with_server ?cache ?on_close ?(config_of = fun c -> c) handler f =
  let socket_path = tmp_name ".sock" in
  let config = config_of (Server.default_config ~socket_path) in
  let t = Server.create ?cache ?on_close config handler in
  let thread = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Thread.join thread;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () -> f socket_path t)

let null_result =
  { Protocol.latency = 0.0;
    esp = 0.0;
    compile_seconds = 0.0;
    episodes = 0;
    fallbacks = 0;
    synthesized = 0;
    cache_hits = 0;
    cache_misses = 0;
    logical_qubits = 0;
    device_qubits = 0;
    physical_gates = 0;
    swaps_added = 0
  }

let echo_handler ~deadline:_ (req : Protocol.compile_request) =
  { null_result with Protocol.episodes = req.Protocol.jobs }

let rpc_result fd req =
  match Server.rpc fd (Protocol.Compile req) with
  | Protocol.Result r -> r
  | Protocol.Refused e ->
    Alcotest.failf "daemon refused: %s" (Protocol.error_name e)
  | _ -> Alcotest.fail "unexpected daemon response"

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let sample_requests =
  [ Protocol.Ping;
    Protocol.Stats;
    Protocol.Shutdown;
    Protocol.Compile Protocol.default_compile;
    Protocol.Compile
      { Protocol.circuit = Protocol.Qasm "OPENQASM 2.0;\nqreg q[1];\n";
        scheme = Protocol.Acc5;
        search = Protocol.Reference;
        backend = Protocol.Qoc;
        rows = 2;
        cols = 7;
        max_n = 4;
        top_k = 2;
        jobs = 3;
        canonical = true;
        device = Some "heavy-hex";
        drift_seed = 42;
        drift_epoch = 3;
        deadline_s = Some 1.5
      } ]

let sample_responses =
  [ Protocol.Pong;
    Protocol.Shutdown_ack;
    Protocol.Result
      { Protocol.latency = 3339.0;
        esp = 0.7789;
        compile_seconds = 12.25;
        episodes = 23;
        fallbacks = 1;
        synthesized = 13;
        cache_hits = 7;
        cache_misses = 6;
        logical_qubits = 21;
        device_qubits = 25;
        physical_gates = 210;
        swaps_added = 22
      };
    Protocol.Stats_reply
      { Protocol.served = 5;
        rejected_overload = 1;
        rejected_deadline = 2;
        errors = 3;
        inflight = 4;
        cache_entries = 1105;
        srv_cache_hits = 204;
        srv_cache_misses = 1105;
        uptime_s = 1.0
      };
    Protocol.Refused Protocol.Overloaded;
    Protocol.Refused Protocol.Deadline_exceeded;
    Protocol.Refused Protocol.Shutting_down;
    Protocol.Refused (Protocol.Bad_request "bad \"quoted\" \n field");
    Protocol.Refused (Protocol.Internal "boom") ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> check_true "request round-trips" (req = req')
      | Error msg -> Alcotest.failf "request decode failed: %s" msg)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let s = Protocol.json_to_string (Protocol.response_to_json resp) in
      match Protocol.json_of_string s with
      | Error msg -> Alcotest.failf "reparse failed: %s" msg
      | Ok j -> (
        match Protocol.response_of_json j with
        | Ok resp' -> check_true "response round-trips" (resp = resp')
        | Error msg -> Alcotest.failf "response decode failed: %s" msg))
    sample_responses

let test_json_malformed () =
  List.iter
    (fun s ->
      match Protocol.json_of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul";
      "{\"a\":1,}"; "\"bad \\x escape\"" ]

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Unix.close b)
    (fun () ->
      Protocol.write_frame a "hello";
      Protocol.write_frame a "";
      Alcotest.(check (option string))
        "frame 1" (Some "hello") (Protocol.read_frame b);
      Alcotest.(check (option string))
        "frame 2 (empty payload)" (Some "") (Protocol.read_frame b);
      Unix.close a;
      Alcotest.(check (option string))
        "clean EOF at boundary" None (Protocol.read_frame b))

let test_frame_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close b)
    (fun () ->
      (* header promises 100 bytes, peer hangs up after 3 *)
      let header = Bytes.of_string "\x00\x00\x00\x64" in
      ignore (Unix.write a header 0 4);
      ignore (Unix.write_substring a "abc" 0 3);
      Unix.close a;
      match Protocol.read_frame b with
      | exception Protocol.Frame_error _ -> ()
      | _ -> Alcotest.fail "truncated frame was not rejected")

let test_frame_oversized () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* header claims ~4 GiB; must be rejected from the header alone *)
      let header = Bytes.of_string "\xff\xff\xff\xff" in
      ignore (Unix.write a header 0 4);
      match Protocol.read_frame b with
      | exception Protocol.Frame_error _ -> ()
      | _ -> Alcotest.fail "oversized frame was not rejected")

(* ------------------------------------------------------------------ *)
(* Lazy pool spawning (the warm-suite regression fix)                  *)
(* ------------------------------------------------------------------ *)

let test_pool_lazy_spawn () =
  let pool = Pool.create ~jobs:4 () in
  check_int "no workers before first submit" 0 (Pool.live_workers pool);
  let fut = Pool.submit pool (fun () -> 6 * 7) in
  check_int "task result" 42 (Pool.await fut);
  check_int "workers spawned on first submit" 4 (Pool.live_workers pool);
  Pool.shutdown pool

let test_pool_no_spawn_on_idle_shutdown () =
  let pool = Pool.create ~jobs:4 () in
  Pool.shutdown pool;
  check_int "idle pool never spawned" 0 (Pool.live_workers pool)

let test_pool_inline_never_spawns () =
  let pool = Pool.create ~jobs:1 () in
  check_int "inline result" 7 (Pool.await (Pool.submit pool (fun () -> 7)));
  check_int "jobs=1 stays inline" 0 (Pool.live_workers pool);
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Server behaviour                                                    *)
(* ------------------------------------------------------------------ *)

let test_ping_and_stats () =
  with_server echo_handler @@ fun socket _t ->
  Server.with_connection socket @@ fun fd ->
  (match Server.rpc fd Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected pong");
  match Server.rpc fd Protocol.Stats with
  | Protocol.Stats_reply s ->
    check_int "nothing served yet" 0 s.Protocol.served;
    check_int "nothing in flight" 0 s.Protocol.inflight
  | _ -> Alcotest.fail "expected stats"

let test_concurrent_clients () =
  let n_clients = 8 and per_client = 5 in
  let slot_handler ~deadline:_ (req : Protocol.compile_request) =
    (* tiny but real work so requests genuinely overlap *)
    Thread.yield ();
    { null_result with Protocol.episodes = req.Protocol.top_k }
  in
  with_server
    ~config_of:(fun c -> { c with Server.jobs = 2 })
    slot_handler
  @@ fun socket t ->
  let failures = Atomic.make 0 in
  let client k () =
    Server.with_connection socket @@ fun fd ->
    for i = 1 to per_client do
      let req =
        { Protocol.default_compile with Protocol.top_k = (k * 100) + i }
      in
      match Server.rpc fd (Protocol.Compile req) with
      | Protocol.Result r when r.Protocol.episodes = (k * 100) + i -> ()
      | _ -> Atomic.incr failures
    done
  in
  let threads = List.init n_clients (fun k -> Thread.create (client k) ()) in
  List.iter Thread.join threads;
  check_int "every request answered with its own result" 0
    (Atomic.get failures);
  let s = Server.stats t in
  check_int "all requests served" (n_clients * per_client) s.Protocol.served;
  check_int "no refusals under cap" 0 s.Protocol.rejected_overload

let test_deadline_refusal () =
  (* a zero-second budget is spent by the time the task starts (the
     server's expiry check is [>=] on a monotonic clock) — deterministic,
     no sleeps *)
  let ran = Atomic.make false in
  let handler ~deadline:_ _req =
    Atomic.set ran true;
    null_result
  in
  with_server handler @@ fun socket t ->
  (Server.with_connection socket @@ fun fd ->
   let req =
     { Protocol.default_compile with Protocol.deadline_s = Some 0.0 }
   in
   match Server.rpc fd (Protocol.Compile req) with
   | Protocol.Refused Protocol.Deadline_exceeded -> ()
   | _ -> Alcotest.fail "expected deadline_exceeded");
  check_true "handler never ran" (not (Atomic.get ran));
  check_int "counted as deadline refusal" 1
    (Server.stats t).Protocol.rejected_deadline

let test_deadline_mid_compile () =
  (* a handler that hits its budget mid-pipeline raises the typed
     exception; the server maps it to the wire error *)
  let handler ~deadline:_ _req = raise Protocol.Deadline_exceeded in
  with_server handler @@ fun socket t ->
  (Server.with_connection socket @@ fun fd ->
   match Server.rpc fd (Protocol.Compile Protocol.default_compile) with
   | Protocol.Refused Protocol.Deadline_exceeded -> ()
   | _ -> Alcotest.fail "expected deadline_exceeded");
  check_int "not an internal error" 0 (Server.stats t).Protocol.errors

let test_malformed_payload_keeps_connection () =
  with_server echo_handler @@ fun socket _t ->
  Server.with_connection socket @@ fun fd ->
  Protocol.write_frame fd "this is not json";
  (match Protocol.read_response fd with
  | Ok (Protocol.Refused (Protocol.Bad_request _)) -> ()
  | _ -> Alcotest.fail "expected bad_request for garbage payload");
  Protocol.write_frame fd "{\"op\":\"launch-missiles\"}";
  (match Protocol.read_response fd with
  | Ok (Protocol.Refused (Protocol.Bad_request _)) -> ()
  | _ -> Alcotest.fail "expected bad_request for unknown op");
  Protocol.write_frame fd "{\"op\":\"compile\",\"deadline_s\":-1}";
  (match Protocol.read_response fd with
  | Ok (Protocol.Refused (Protocol.Bad_request _)) -> ()
  | _ -> Alcotest.fail "expected bad_request for a negative deadline");
  (* the same connection still works *)
  match Server.rpc fd Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "connection should survive bad payloads"

let test_torn_frame_keeps_daemon () =
  with_server echo_handler @@ fun socket _t ->
  (* connection 1 sends a frame header claiming 4 GiB: connection dies,
     daemon must not *)
  (Server.with_connection socket @@ fun fd ->
   ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4));
  (* daemon still answers fresh connections *)
  Server.with_connection socket @@ fun fd ->
  match Server.rpc fd Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "daemon should survive a torn frame"

let test_overload_refusal () =
  (* jobs=1 executes the handler inline on the connection thread, so a
     blocked client A provably occupies the single admission slot while
     client B is refused — no timing races *)
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let entered = ref false and release = ref false in
  let blocking_handler ~deadline:_ _req =
    Mutex.lock gate;
    entered := true;
    Condition.broadcast cond;
    while not !release do
      Condition.wait cond gate
    done;
    Mutex.unlock gate;
    null_result
  in
  with_server
    ~config_of:(fun c -> { c with Server.queue_cap = 1 })
    blocking_handler
  @@ fun socket t ->
  let result_a = ref None in
  let client_a =
    Thread.create
      (fun () ->
        Server.with_connection socket @@ fun fd ->
        result_a :=
          Some (Server.rpc fd (Protocol.Compile Protocol.default_compile)))
      ()
  in
  (* wait until A is inside the handler (slot taken) *)
  Mutex.lock gate;
  while not !entered do
    Condition.wait cond gate
  done;
  Mutex.unlock gate;
  (Server.with_connection socket @@ fun fd ->
   match Server.rpc fd (Protocol.Compile Protocol.default_compile) with
   | Protocol.Refused Protocol.Overloaded -> ()
   | _ -> Alcotest.fail "expected overloaded at queue cap");
  (* release A; it must complete normally *)
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  Thread.join client_a;
  (match !result_a with
  | Some (Protocol.Result _) -> ()
  | _ -> Alcotest.fail "client A should have completed after release");
  let s = Server.stats t in
  check_int "one served" 1 s.Protocol.served;
  check_int "one overload refusal" 1 s.Protocol.rejected_overload

let test_shutdown_request_drains () =
  with_server echo_handler @@ fun socket t ->
  (Server.with_connection socket @@ fun fd ->
   match Server.rpc fd Protocol.Shutdown with
   | Protocol.Shutdown_ack -> ()
   | _ -> Alcotest.fail "expected shutdown ack");
  (* the run loop notices within one select tick *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Server.stopping t)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check_true "stop flag set by shutdown request" (Server.stopping t)

let test_compiles_refused_while_draining () =
  with_server echo_handler @@ fun socket t ->
  Server.request_stop t;
  Server.with_connection socket @@ fun fd ->
  Protocol.write_request fd (Protocol.Compile Protocol.default_compile);
  match Protocol.read_response fd with
  | Ok (Protocol.Refused Protocol.Shutting_down) -> ()
  (* the daemon may already have stopped reading: a closed or reset
     connection is also a correct refusal *)
  | exception Protocol.Frame_error _ -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  | _ -> Alcotest.fail "expected shutting_down or a closed connection"

(* ------------------------------------------------------------------ *)
(* Cache persistence through shutdown and interrupts                   *)
(* ------------------------------------------------------------------ *)

let entry lat =
  { Cache.latency = lat;
    error = 0.001;
    fidelity = 0.999;
    provenance = Db.Synthesized
  }

let test_shutdown_persists_cache () =
  let path = tmp_name ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let cache = Cache.open_file path in
      let handler ~deadline:_ (req : Protocol.compile_request) =
        Cache.publish cache
          (Printf.sprintf "gate-%d" req.Protocol.top_k)
          (entry (float_of_int req.Protocol.top_k));
        { null_result with Protocol.synthesized = 1 }
      in
      with_server ~cache
        ~on_close:(fun () -> Cache.close cache)
        handler
        (fun socket _t ->
          Server.with_connection socket @@ fun fd ->
          for k = 1 to 20 do
            match
              Server.rpc fd
                (Protocol.Compile
                   { Protocol.default_compile with Protocol.top_k = k })
            with
            | Protocol.Result _ -> ()
            | _ -> Alcotest.fail "compile failed"
          done);
      (* with_server's finally has drained and closed: the file must be a
         compacted snapshot (no journal tail) holding all 20 entries *)
      let bytes = read_file path in
      check_true "no journal tail after drain"
        (not
           (String.split_on_char '\n' bytes
           |> List.exists (fun l -> String.length l > 0 && l.[0] = '+')));
      let reopened = Cache.open_file path in
      check_int "all entries persisted" 20 (Cache.size reopened);
      check_true "spot check"
        (match Cache.find reopened "gate-17" with
        | Some e -> e.Cache.latency = 17.0
        | None -> false);
      Cache.close reopened)

let test_cleanup_compacts_on_interrupt () =
  let path = tmp_name ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let cache = Cache.open_file path in
      for k = 1 to 12 do
        Cache.publish cache (Printf.sprintf "g%d" k) (entry (float_of_int k))
      done;
      check_true "journal has a pending tail before cleanup"
        (String.split_on_char '\n' (read_file path)
        |> List.exists (fun l -> String.length l > 0 && l.[0] = '+'));
      Server.Cleanup.register_cache cache;
      (* what the SIGINT/SIGTERM handler runs before exiting *)
      Server.Cleanup.run_cleanup ();
      Server.Cleanup.unregister_cache cache;
      check_true "journal compacted by cleanup"
        (not
           (String.split_on_char '\n' (read_file path)
           |> List.exists (fun l -> String.length l > 0 && l.[0] = '+')));
      let reopened = Cache.open_file path in
      check_int "nothing lost" 12 (Cache.size reopened);
      Cache.close reopened)

let test_cleanup_survives_failing_compaction () =
  let path = tmp_name ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let cache = Cache.open_file path in
      for k = 1 to 7 do
        Cache.publish cache (Printf.sprintf "g%d" k) (entry (float_of_int k))
      done;
      Server.Cleanup.register_cache cache;
      (* the compaction inside close fails (injected): cleanup must
         swallow it, and the journal file must still replay fully —
         compaction is atomic, failure leaves the valid journal behind *)
      Faultin.with_faults
        [ (Faultin.Db_save_error, Faultin.Always) ]
        Server.Cleanup.run_cleanup;
      Server.Cleanup.unregister_cache cache;
      let reopened = Cache.open_file path in
      check_int "no torn file: every record replayed" 7 (Cache.size reopened);
      Cache.close reopened)

(* ------------------------------------------------------------------ *)
(* Client-vs-in-process byte identity                                  *)
(* ------------------------------------------------------------------ *)

let identity_benchmarks = [ "simon"; "mod5d2_64"; "bv" ]

let test_client_matches_inprocess () =
  let req_of name =
    { Protocol.default_compile with
      Protocol.circuit = Protocol.Benchmark name
    }
  in
  (* in-process: fresh in-memory cache, exactly the CLI's no-daemon path *)
  let cache_a = Cache.create () in
  let rows_a =
    List.map
      (fun name ->
        Service.suite_row name
          (Service.handle ~cache:cache_a ~deadline:None (req_of name)))
      identity_benchmarks
  in
  (* daemon: same requests through the wire against its own fresh cache *)
  let cache_b = Cache.create () in
  let rows_b =
    with_server ~cache:cache_b
      (Service.handler ~cache:cache_b ())
      (fun socket _t ->
        Server.with_connection socket @@ fun fd ->
        List.map
          (fun name -> Service.suite_row name (rpc_result fd (req_of name)))
          identity_benchmarks)
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "row bytes identical" a b)
    rows_a rows_b;
  (* the daemon-side cache holds the same entries as the in-process one *)
  check_int "same cache population" (Cache.size cache_a) (Cache.size cache_b)

let test_warm_daemon_synthesizes_nothing () =
  let cache = Cache.create () in
  with_server ~cache (Service.handler ~cache ()) @@ fun socket _t ->
  Server.with_connection socket @@ fun fd ->
  let req =
    { Protocol.default_compile with
      Protocol.circuit = Protocol.Benchmark "simon"
    }
  in
  let cold = rpc_result fd req in
  check_true "cold run synthesized something" (cold.Protocol.synthesized > 0);
  let warm = rpc_result fd req in
  check_int "warm run synthesized nothing" 0 warm.Protocol.synthesized;
  check_int "warm run missed nothing" 0 warm.Protocol.cache_misses;
  check_true "warm run all hits" (warm.Protocol.cache_hits > 0);
  check_float "same latency" warm.Protocol.latency cold.Protocol.latency

let test_idle_timeout_stops () =
  let cfg c = { c with Server.idle_timeout_s = Some 0.05 } in
  let socket_path = tmp_name ".sock" in
  let config = cfg (Server.default_config ~socket_path) in
  let t = Server.create config echo_handler in
  let thread = Thread.create Server.run t in
  (* no clients at all: the daemon must decide to exit by itself *)
  Thread.join thread;
  check_true "stopped via idle timeout" (Server.stopping t);
  if Sys.file_exists socket_path then Sys.remove socket_path

let suite =
  [ case "protocol: requests round-trip" test_request_roundtrip;
    case "protocol: responses round-trip" test_response_roundtrip;
    case "protocol: malformed JSON is a typed error" test_json_malformed;
    case "protocol: frames round-trip" test_frame_roundtrip;
    case "protocol: truncated frame rejected" test_frame_truncated;
    case "protocol: oversized frame rejected" test_frame_oversized;
    case "pool: workers spawn lazily on first submit" test_pool_lazy_spawn;
    case "pool: idle create+shutdown spawns nothing"
      test_pool_no_spawn_on_idle_shutdown;
    case "pool: jobs=1 stays inline" test_pool_inline_never_spawns;
    case "server: ping and stats" test_ping_and_stats;
    case "server: concurrent multi-client stress" test_concurrent_clients;
    case "server: expired deadline refused before the handler"
      test_deadline_refusal;
    case "server: mid-compile deadline maps to the typed error"
      test_deadline_mid_compile;
    case "server: bad payloads keep the connection"
      test_malformed_payload_keeps_connection;
    case "server: torn frame kills the connection, not the daemon"
      test_torn_frame_keeps_daemon;
    case "server: overload refusal at queue cap" test_overload_refusal;
    case "server: shutdown request drains" test_shutdown_request_drains;
    case "server: compiles refused while draining"
      test_compiles_refused_while_draining;
    case "server: idle timeout stops the daemon" test_idle_timeout_stops;
    case "cache: shutdown persists a compacted snapshot"
      test_shutdown_persists_cache;
    case "cache: interrupt cleanup compacts the journal"
      test_cleanup_compacts_on_interrupt;
    case "cache: cleanup survives a failing compaction (no torn file)"
      test_cleanup_survives_failing_compaction;
    slow_case "identity: daemon rows byte-identical to in-process"
      test_client_matches_inprocess;
    slow_case "identity: warm daemon serves entirely from cache"
      test_warm_daemon_synthesizes_nothing ]
