(* The equivalence-class battery pinning lib/canon.

   The canonicalization layer is only sound if two properties hold
   simultaneously: every unitary-preserving rewrite the compiler performs
   (commutation reordering, peephole cleanup, basis resynthesis, virtual-Z
   phase folding, local dressing) maps a group to the SAME class key, and
   two groups that are not locally equivalent never share one. The qcheck
   properties here drive both directions over the same generators the rest
   of the suite uses, and the seeded sweeps pin key stability at the
   quantization tolerance boundary — the regime where a float hiccup would
   silently corrupt the shared cache. *)

open Test_util
module Canon = Paqoc_canon.Canon
module Commutation = Paqoc_circuit.Commutation
module Decompose = Paqoc_circuit.Decompose

let key n gates =
  match Canon.class_key ~n_qubits:n gates with
  | Some (k, _) -> k
  | None -> Alcotest.failf "class_key returned None for a concrete group"

let key_opt n gates = Option.map fst (Canon.class_key ~n_qubits:n gates)

(* [target ≈ e^{iφ} l · rep · r], with unitary factors — the replay
   contract a class hit depends on. *)
let check_correction msg ~rep ~target =
  match Canon.relate ~rep ~target with
  | None -> Alcotest.failf "%s: relate returned None" msg
  | Some (l, r) ->
      check_true (msg ^ ": l unitary") (Cmat.is_unitary ~tol:1e-6 l);
      check_true (msg ^ ": r unitary") (Cmat.is_unitary ~tol:1e-6 r);
      check_mat_phase ~tol:1e-6
        (msg ^ ": target = phase * l * rep * r")
        target
        (Cmat.mul l (Cmat.mul rep r))

(* ------------------------------------------------------------------ *)
(* Random blocks (self-contained generators: gen_gate from Test_util    *)
(* can emit 2q gates on a 1-wire circuit, so 1q/2q blocks get their     *)
(* own)                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_1q_gate =
  let open QCheck.Gen in
  let angle = map (fun f -> Angle.const f) (float_bound_inclusive 6.28) in
  frequency
    [ (2, return (Gate.app1 Gate.H 0));
      (2, return (Gate.app1 Gate.X 0));
      (1, return (Gate.app1 Gate.T 0));
      (1, return (Gate.app1 Gate.SX 0));
      (2, map (fun a -> Gate.app1 (Gate.RZ a) 0) angle);
      (1, map (fun a -> Gate.app1 (Gate.RX a) 0) angle)
    ]

let gen_1q_block = QCheck.Gen.(list_size (int_range 1 8) gen_1q_gate)

let gen_2q_gate =
  let open QCheck.Gen in
  let q = int_bound 1 in
  let angle = map (fun f -> Angle.const f) (float_bound_inclusive 6.28) in
  let pair = map (fun a -> (a, 1 - a)) q in
  frequency
    [ (2, map2 (fun g i -> Gate.app1 g i) (oneofl [ Gate.H; Gate.X; Gate.T; Gate.SX ]) q);
      (2, map2 (fun i a -> Gate.app1 (Gate.RZ a) i) q angle);
      (1, map2 (fun i a -> Gate.app1 (Gate.RX a) i) q angle);
      (3, map (fun (a, b) -> Gate.app2 Gate.CX a b) pair);
      (1, map (fun (a, b) -> Gate.app2 Gate.CZ a b) pair);
      (1, map2 (fun (a, b) t -> Gate.app2 (Gate.CPhase t) a b) pair angle)
    ]

let gen_2q_block = QCheck.Gen.(list_size (int_range 1 10) gen_2q_gate)

let print_block gates =
  String.concat "; " (List.map Gate.app_to_string gates)

let arb_1q_block = QCheck.make ~print:print_block gen_1q_block
let arb_2q_block = QCheck.make ~print:print_block gen_2q_block

let arb_1q_kind =
  QCheck.make
    QCheck.Gen.(
      frequency
        [ (2, return Gate.H);
          (2, return Gate.X);
          (1, return Gate.T);
          (1, return Gate.SX);
          (2,
           map
             (fun f -> Gate.RZ (Angle.const f))
             (float_bound_inclusive 6.28)) ])

(* deterministic 2q block for the seeded sweeps (plain Random.State, like
   test_properties.ml — a failure reproduces from the printed seed) *)
let random_2q_gates st =
  let angle () = Angle.const (Random.State.float st 6.28) in
  let gate () =
    let a = Random.State.int st 2 in
    match Random.State.int st 7 with
    | 0 -> Gate.app1 Gate.H a
    | 1 -> Gate.app1 Gate.X a
    | 2 -> Gate.app1 (Gate.RZ (angle ())) a
    | 3 -> Gate.app1 Gate.SX a
    | 4 -> Gate.app2 Gate.CX a (1 - a)
    | 5 -> Gate.app2 Gate.CZ a (1 - a)
    | _ -> Gate.app2 (Gate.CPhase (angle ())) a (1 - a)
  in
  List.init (1 + Random.State.int st 9) (fun _ -> gate ())

(* ------------------------------------------------------------------ *)
(* Unit cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_h_sx_share_class () =
  check_true "H and SX are virtual-Z equivalent"
    (key 1 [ Gate.app1 Gate.H 0 ] = key 1 [ Gate.app1 Gate.SX 0 ])

let test_x_distinct_from_h () =
  check_true "X (theta = pi) is not in the H class (theta = pi/2)"
    (key 1 [ Gate.app1 Gate.X 0 ] <> key 1 [ Gate.app1 Gate.H 0 ])

let test_diagonal_collapse () =
  let id = key 1 [] in
  List.iter
    (fun (name, g) ->
      check_true (name ^ " collapses to the identity class")
        (key 1 [ g ] = id))
    [ ("Z", Gate.app1 Gate.Z 0);
      ("S", Gate.app1 Gate.S 0);
      ("T", Gate.app1 Gate.T 0);
      ("RZ(0.7)", Gate.app1 (Gate.RZ (Angle.const 0.7)) 0)
    ]

let test_cx_cz_share_class () =
  let kcx = key 2 [ Gate.app2 Gate.CX 0 1 ] in
  check_true "CX and CZ share the Makhlin class"
    (kcx = key 2 [ Gate.app2 Gate.CZ 0 1 ]);
  (* the documented grid point: G1 = 0, G2 = 1 at tolerance 1e-6 *)
  check_true "CX class is the documented grid point"
    (kcx = "2q:0:0:1000000:0")

let test_cphase_classes () =
  check_true "CPhase(pi) is CZ"
    (key 2 [ Gate.app2 (Gate.CPhase (Angle.const Angle.pi)) 0 1 ]
    = key 2 [ Gate.app2 Gate.CZ 0 1 ]);
  check_true "CPhase(pi/2) is a distinct interaction class"
    (key 2 [ Gate.app2 (Gate.CPhase (Angle.const (Angle.pi /. 2.))) 0 1 ]
    <> key 2 [ Gate.app2 Gate.CZ 0 1 ])

let test_swap_distinct () =
  check_true "SWAP and CX are distinct classes"
    (key 2 [ Gate.app2 Gate.SWAP 0 1 ] <> key 2 [ Gate.app2 Gate.CX 0 1 ])

let test_arity_prefixes () =
  let starts p s = String.length s >= String.length p
                   && String.sub s 0 (String.length p) = p in
  check_true "1q prefix" (starts "1q:" (key 1 [ Gate.app1 Gate.H 0 ]));
  check_true "2q prefix" (starts "2q:" (key 2 [ Gate.app2 Gate.CX 0 1 ]));
  check_true "3q prefix" (starts "3q:" (key 3 [ Gate.app3 Gate.CCX 0 1 2 ]))

let test_symbolic_has_no_class () =
  check_true "symbolic group has no unitary, hence no class"
    (key_opt 1 [ Gate.app1 (Gate.RZ (Angle.sym "gamma")) 0 ] = None)

let test_large_arity_has_no_class () =
  check_true "4-qubit groups are beyond the invariant set"
    (key_opt 4 [ Gate.app2 Gate.CX 0 3 ] = None)

let test_group_unitary_matches_circuit () =
  let gates = [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ] in
  match Canon.group_unitary ~n_qubits:2 gates with
  | None -> Alcotest.fail "group_unitary returned None"
  | Some u ->
      check_mat ~tol:1e-12 "group_unitary = unitary_of_apps"
        (Gate.unitary_of_apps ~n_qubits:2 gates)
        u

let test_quantize_grid () =
  check_int "0 -> bin 0" 0 (Canon.quantize 0.0);
  check_int "tolerance -> bin 1" 1 (Canon.quantize Canon.tolerance);
  check_int "-tolerance -> bin -1" (-1) (Canon.quantize (-.Canon.tolerance));
  check_int "half a bin rounds away from zero" 1
    (Canon.quantize (0.5 *. Canon.tolerance));
  check_int "just under half a bin rounds down" 0
    (Canon.quantize (0.49 *. Canon.tolerance))

let test_keys_are_space_free () =
  (* class keys are stored as space-separated DB record fields *)
  List.iter
    (fun k ->
      check_true ("no spaces in " ^ k) (not (String.contains k ' ')))
    [ key 1 [ Gate.app1 Gate.H 0 ];
      key 2 [ Gate.app2 Gate.CX 0 1 ];
      key 3 [ Gate.app3 Gate.CCX 0 1 2 ]
    ]

let test_relate_reflexive () =
  let u = Gate.unitary Gate.CX in
  check_correction "CX to itself" ~rep:u ~target:u

let test_relate_h_sx () =
  check_correction "H to SX" ~rep:(Gate.unitary Gate.H)
    ~target:(Gate.unitary Gate.SX)

let test_relate_cx_cz () =
  check_correction "CX to CZ" ~rep:(Gate.unitary Gate.CX)
    ~target:(Gate.unitary Gate.CZ)

let test_relate_dressed_cx () =
  let dress =
    [ Gate.app1 Gate.T 0; Gate.app1 Gate.H 1; Gate.app2 Gate.CX 0 1;
      Gate.app1 Gate.SX 0; Gate.app1 Gate.S 1 ]
  in
  check_true "dressed CX stays in the CX class"
    (key 2 dress = key 2 [ Gate.app2 Gate.CX 0 1 ]);
  check_correction "CX to dressed CX" ~rep:(Gate.unitary Gate.CX)
    ~target:(Gate.unitary_of_apps ~n_qubits:2 dress)

let test_relate_rejects_inequivalent_2q () =
  check_true "CX and SWAP do not relate"
    (Canon.relate ~rep:(Gate.unitary Gate.CX)
       ~target:(Gate.unitary Gate.SWAP)
    = None)

let test_relate_3q_phase () =
  let u = Gate.unitary Gate.CCX in
  let phase = Paqoc_linalg.Cx.polar 1.0 0.37 in
  check_correction "CCX to a global phase of itself" ~rep:u
    ~target:(Cmat.scale phase u)

let test_relate_rejects_inequivalent_3q () =
  check_true "CCX and the identity do not relate"
    (Canon.relate ~rep:(Gate.unitary Gate.CCX) ~target:(Cmat.identity 8)
    = None)

let test_float_serialization_roundtrip () =
  let u = Gate.unitary_of_apps ~n_qubits:2
      [ Gate.app1 Gate.H 0; Gate.app2 (Gate.CPhase (Angle.const 1.1)) 0 1 ]
  in
  (match Canon.unitary_of_floats ~n_qubits:2 (Canon.unitary_to_floats u) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok v -> check_mat ~tol:0.0 "floats roundtrip bit-exactly" u v);
  match Canon.unitary_of_floats ~n_qubits:2 [| 1.0; 0.0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad float count must be rejected"

let test_3q_reorder_shares_class () =
  let a = [ Gate.app2 Gate.CX 0 1; Gate.app1 (Gate.RZ (Angle.const 0.9)) 2 ] in
  let b = [ Gate.app1 (Gate.RZ (Angle.const 0.9)) 2; Gate.app2 Gate.CX 0 1 ] in
  check_true "disjoint-qubit reorder keeps the 3q digest"
    (key 3 a = key 3 b)

(* ------------------------------------------------------------------ *)
(* Rewrite-invariance properties                                       *)
(* ------------------------------------------------------------------ *)

let prop_normalize_preserves_key n =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "commutation normalize preserves the key (%dq)" n)
    (arb_circuit ~n ~max_gates:10 ())
    (fun c ->
      let c' = Commutation.normalize c in
      key_opt n c.Circuit.gates = key_opt n c'.Circuit.gates)

let prop_peephole_preserves_key =
  QCheck.Test.make ~count:60 ~name:"peephole preserves the key (2q)"
    arb_2q_block
    (fun gates ->
      let c = Decompose.peephole (Circuit.make ~n_qubits:2 gates) in
      key_opt 2 gates = key_opt 2 c.Circuit.gates)

let prop_to_basis_preserves_key_1q =
  QCheck.Test.make ~count:60 ~name:"basis resynthesis preserves the key (1q)"
    arb_1q_block
    (fun gates ->
      let c = Decompose.to_basis (Circuit.make ~n_qubits:1 gates) in
      key_opt 1 gates = key_opt 1 c.Circuit.gates)

let prop_to_basis_preserves_key_2q =
  QCheck.Test.make ~count:60 ~name:"basis resynthesis preserves the key (2q)"
    arb_2q_block
    (fun gates ->
      let c = Decompose.to_basis (Circuit.make ~n_qubits:2 gates) in
      key_opt 2 gates = key_opt 2 c.Circuit.gates)

let prop_phase_folding_preserves_key_1q =
  QCheck.Test.make ~count:80 ~name:"virtual-Z phase folding preserves the key"
    QCheck.(pair arb_1q_block (pair (float_range 0.0 6.28) (float_range 0.0 6.28)))
    (fun (gates, (a, b)) ->
      let folded =
        Gate.app1 (Gate.RZ (Angle.const a)) 0
        :: (gates @ [ Gate.app1 (Gate.RZ (Angle.const b)) 0 ])
      in
      key_opt 1 gates = key_opt 1 folded)

let prop_local_dressing_preserves_key_2q =
  QCheck.Test.make ~count:80 ~name:"local dressing preserves the key (2q)"
    QCheck.(pair arb_2q_block (quad arb_1q_kind arb_1q_kind arb_1q_kind arb_1q_kind))
    (fun (gates, (k1, k2, k3, k4)) ->
      let dressed =
        Gate.app1 k1 0 :: Gate.app1 k2 1
        :: (gates @ [ Gate.app1 k3 0; Gate.app1 k4 1 ])
      in
      key_opt 2 gates = key_opt 2 dressed)

let prop_equal_unitaries_share_key =
  (* soundness direction: same operator (up to phase) => same key, i.e.
     a class boundary never splits genuinely equal groups *)
  QCheck.Test.make ~count:60 ~name:"equal unitaries never split classes"
    QCheck.(pair arb_2q_block arb_2q_block)
    (fun (g1, g2) ->
      let u1 = Gate.unitary_of_apps ~n_qubits:2 g1 in
      let u2 = Gate.unitary_of_apps ~n_qubits:2 g2 in
      (not (Cmat.equal_up_to_phase ~tol:1e-9 u1 u2))
      || key_opt 2 g1 = key_opt 2 g2)

(* ------------------------------------------------------------------ *)
(* Seeded sweeps: non-collision and boundary stability                 *)
(* ------------------------------------------------------------------ *)

let test_classmates_always_relate () =
  (* every pair of groups the key declares equivalent must replay: the
     correction exists and verifies. A failure here is a key collision —
     the cache would serve a wrong pulse. *)
  let st = Random.State.make [| 0x4b414b |] in
  let buckets = Hashtbl.create 64 in
  for _ = 1 to 250 do
    let gates = random_2q_gates st in
    match Canon.class_key ~n_qubits:2 gates with
    | None -> Alcotest.fail "concrete 2q group must have a class"
    | Some (k, u) -> (
        match Hashtbl.find_opt buckets k with
        | None -> Hashtbl.add buckets k u
        | Some rep -> check_correction ("class " ^ k) ~rep ~target:u)
  done;
  check_true "the sweep produced several distinct classes"
    (Hashtbl.length buckets > 3)

let test_boundary_keys_stable () =
  (* unitaries whose invariants sit at quantization bin edges: the key of
     a FIXED unitary must be a pure function of its floats — identical
     across repeated computations and across a defensive copy. *)
  let st = Random.State.make [| 0xb0a4d |] in
  for _ = 1 to 100 do
    let bin = float_of_int (Random.State.int st 2_000_000 - 1_000_000) in
    let off = (Random.State.float st 1.0 -. 0.5) *. Canon.tolerance in
    let theta = (bin +. 0.5) *. Canon.tolerance +. off in
    let u = Gate.unitary (Gate.CPhase (Angle.const theta)) in
    let k0 = Canon.class_key_of_unitary u in
    check_true "boundary unitary has a key" (k0 <> None);
    for _ = 1 to 4 do
      check_true "key is stable across recomputation"
        (Canon.class_key_of_unitary u = k0)
    done;
    check_true "key is stable across a matrix copy"
      (Canon.class_key_of_unitary (Cmat.copy u) = k0)
  done

let test_boundary_relate_is_safe () =
  (* two NEARLY equal unitaries straddling a bin can land in the same
     class; relate must then either produce a verified correction or
     refuse (a miss) — never accept a wrong replay. check_correction
     enforces the verified side; None is the safe fallback. *)
  let st = Random.State.make [| 0xfaceb0 |] in
  let accepted = ref 0 and refused = ref 0 in
  for _ = 1 to 100 do
    let theta = Random.State.float st 6.28 in
    let delta = (Random.State.float st 2.0 -. 1.0) *. Canon.tolerance in
    let u = Gate.unitary (Gate.CPhase (Angle.const theta)) in
    let v = Gate.unitary (Gate.CPhase (Angle.const (theta +. delta))) in
    if Canon.class_key_of_unitary u = Canon.class_key_of_unitary v then
      match Canon.relate ~rep:u ~target:v with
      | None -> incr refused
      | Some (l, r) ->
          incr accepted;
          check_mat_phase ~tol:1e-5 "accepted boundary replay verifies" v
            (Cmat.mul l (Cmat.mul u r))
  done;
  check_true "the sweep exercised same-bin pairs" (!accepted + !refused > 10)

let suite =
  [ case "H and SX share a 1q class" test_h_sx_share_class;
    case "X is distinct from H" test_x_distinct_from_h;
    case "diagonal gates collapse to identity" test_diagonal_collapse;
    case "CX and CZ share the Makhlin class" test_cx_cz_share_class;
    case "CPhase classes split by angle" test_cphase_classes;
    case "SWAP is distinct from CX" test_swap_distinct;
    case "arity prefixes segregate keys" test_arity_prefixes;
    case "symbolic groups have no class" test_symbolic_has_no_class;
    case "4q groups have no class" test_large_arity_has_no_class;
    case "group_unitary matches the circuit unitary"
      test_group_unitary_matches_circuit;
    case "quantize grid semantics" test_quantize_grid;
    case "keys are space-free" test_keys_are_space_free;
    case "relate is reflexive" test_relate_reflexive;
    case "relate H to SX" test_relate_h_sx;
    case "relate CX to CZ" test_relate_cx_cz;
    case "relate CX to dressed CX" test_relate_dressed_cx;
    case "relate rejects CX vs SWAP" test_relate_rejects_inequivalent_2q;
    case "relate 3q global phase" test_relate_3q_phase;
    case "relate rejects CCX vs identity" test_relate_rejects_inequivalent_3q;
    case "float serialization roundtrips" test_float_serialization_roundtrip;
    case "3q disjoint reorder shares a class" test_3q_reorder_shares_class;
    qcheck (prop_normalize_preserves_key 2);
    qcheck (prop_normalize_preserves_key 3);
    qcheck prop_peephole_preserves_key;
    qcheck prop_to_basis_preserves_key_1q;
    qcheck prop_to_basis_preserves_key_2q;
    qcheck prop_phase_folding_preserves_key_1q;
    qcheck prop_local_dressing_preserves_key_2q;
    qcheck prop_equal_unitaries_share_key;
    slow_case "class-mates always relate (seeded sweep)"
      test_classmates_always_relate;
    case "boundary keys are stable" test_boundary_keys_stable;
    case "boundary relate is safe" test_boundary_relate_is_safe
  ]
