let () =
  Alcotest.run "paqoc"
    [ ("linalg", Test_linalg.suite);
      ("circuit", Test_circuit.suite);
      ("topology", Test_topology.suite);
      ("commutation", Test_commutation.suite);
      ("pulse", Test_pulse.suite);
      ("obs", Test_obs.suite);
      ("properties", Test_properties.suite);
      ("parallel", Test_parallel.suite);
      ("mining", Test_mining.suite);
      ("accqoc", Test_accqoc.suite);
      ("core", Test_core.suite);
      ("variational", Test_variational.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("integration", Test_integration.suite);
      ("surfaces", Test_cli_like.suite);
      ("failures", Test_failures.suite);
      ("resilience", Test_resilience.suite);
      ("differential", Test_differential.suite);
      ("qasm-fuzz", Test_qasm_fuzz.suite);
      ("kernels", Test_kernels.suite);
      ("search", Test_search.suite);
      ("golden", Test_golden.suite);
      ("cache", Test_cache.suite);
      ("canon", Test_canon.suite);
      ("server", Test_server.suite);
      ("sweep", Test_sweep.suite);
      ("device", Test_device.suite)
    ]
