(** The parametric fast path's contract, pinned: recompiling at an exact
    anchor angle is bitwise-identical to a fresh compile of the same bound
    plan, the frozen plan is a pure function of the circuit at any [jobs],
    and plan persistence round-trips byte-for-byte with typed,
    line-numbered errors on malformed sidecars. The daemon path is held
    byte-identical to the in-process path in [Test_server]-style at the
    service layer. *)

open Test_util
module V = Paqoc.Variational
module Gen = Paqoc_pulse.Generator
module Qaoa = Paqoc_benchmarks.Qaoa
module Dnn = Paqoc_benchmarks.Dnn
module Protocol = Paqoc_pulse.Protocol
module Server = Paqoc_pulse.Server
module Suite = Paqoc_benchmarks.Suite
module Service = Paqoc_service.Service

let ansatz () = Qaoa.circuit ~symbolic:true ~n:6 ~p:1 ()

let freeze_model ?(anchors = 5) ?(jobs = 1) () =
  let gen = Gen.model_default () in
  let plan = V.freeze ~anchors ~jobs (V.prepare (ansatz ())) gen in
  (plan, gen)

(* Render the parts of an iteration that must agree bitwise: [%h] hex
   floats make the comparison exact, not approximate. *)
let priced_bytes (p : V.priced) =
  Printf.sprintf "%h %h %h %s" p.V.latency p.V.error p.V.fidelity
    (match p.V.provenance with
    | Gen.Synthesized -> "synthesized"
    | Gen.Fallback -> "fallback")

let iteration_bytes (it : V.iteration) =
  String.concat "\n"
    (Printf.sprintf "latency %h esp %h" it.V.latency it.V.esp
    :: List.map (fun (k, p) -> k ^ " => " ^ priced_bytes p) it.V.rows)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let all_at plan v = List.map (fun p -> (p, v)) (V.plan_params plan)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_tmp f =
  let path = Filename.temp_file "paqoc_sweep" ".plan" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* ---- malformed-plan helpers ---- *)

let corrupt_line k f text =
  String.concat "\n"
    (List.mapi
       (fun i l -> if i = k - 1 then f l else l)
       (String.split_on_char '\n' text))

let expect_error ~line ~needle text =
  match V.plan_of_string text with
  | Ok _ ->
    Alcotest.failf "corrupt plan (expecting %S at line %d) parsed" needle line
  | Error e ->
    check_int (Printf.sprintf "error line for %S" needle) line e.V.line;
    check_true
      (Printf.sprintf "reason mentions %S (got %S)" needle e.V.reason)
      (contains e.V.reason needle)

let suite =
  [ case "recompile at an exact anchor angle equals a fresh compile bitwise"
      (fun () ->
        let plan, gen = freeze_model () in
        let v = List.nth (V.plan_anchor_values plan) 2 in
        let angles = all_at plan v in
        let fast = V.recompile plan gen ~angles in
        let oracle = V.recompile_full plan (Gen.model_default ()) ~angles in
        check_true "identical bytes"
          (String.equal (iteration_bytes fast) (iteration_bytes oracle));
        check_int "no fallbacks at an anchor angle" 0 fast.V.fallback;
        let _, n_param, _ = V.plan_slot_kinds plan in
        check_int "every param slot served from the table" n_param
          fast.V.interp);
    case "the frozen plan is a pure function of the circuit at any jobs"
      (fun () ->
        let p1, _ = freeze_model ~jobs:1 () in
        let p4, _ = freeze_model ~jobs:4 () in
        check_true "plan bytes identical at --jobs 1 vs 4"
          (String.equal (V.plan_to_string p1) (V.plan_to_string p4)));
    case "the fast path is deterministic across generators" (fun () ->
        let plan1, gen1 = freeze_model () in
        let plan2, gen2 = freeze_model () in
        let angles = all_at plan1 1.234 in
        let i1 = V.recompile plan1 gen1 ~angles in
        let i2 = V.recompile plan2 gen2 ~angles in
        check_true "identical bytes"
          (String.equal (iteration_bytes i1) (iteration_bytes i2));
        check_int "in-hull analytic pricing never falls back" 0 i1.V.fallback);
    case "the full-recompile oracle is jobs-invariant" (fun () ->
        let plan, _ = freeze_model () in
        let angles = all_at plan 0.7 in
        let i1 = V.recompile_full ~jobs:1 plan (Gen.model_default ()) ~angles in
        let i4 = V.recompile_full ~jobs:4 plan (Gen.model_default ()) ~angles in
        check_true "identical bytes"
          (String.equal (iteration_bytes i1) (iteration_bytes i4)));
    case "plans persist and reload byte-for-byte" (fun () ->
        let plan, gen = freeze_model () in
        let rendered = V.plan_to_string plan in
        with_tmp @@ fun path ->
        V.save_plan plan path;
        check_true "save_plan writes plan_to_string verbatim"
          (String.equal rendered (read_file path));
        match V.load_plan path with
        | Error e -> Alcotest.failf "reload failed at line %d: %s" e.V.line e.V.reason
        | Ok plan' ->
          check_true "render(parse(render)) is the identity"
            (String.equal rendered (V.plan_to_string plan'));
          (* the reloaded plan also behaves identically *)
          let angles = all_at plan 2.5 in
          check_true "reloaded plan recompiles identically"
            (String.equal
               (iteration_bytes (V.recompile plan gen ~angles))
               (iteration_bytes
                  (V.recompile plan' (Gen.model_default ()) ~angles))));
    slow_case "waveform (QOC) anchors survive the round-trip byte-for-byte"
      (fun () ->
        let circ = Dnn.circuit ~symbolic:true ~n:3 ~blocks:1 () in
        let gen = Gen.qoc_default () in
        let plan = V.freeze ~anchors:2 (V.prepare circ) gen in
        let rendered = V.plan_to_string plan in
        check_true "QOC anchors carry waveform lines" (contains rendered "\nW ");
        match V.plan_of_string rendered with
        | Error e -> Alcotest.failf "reparse failed at line %d: %s" e.V.line e.V.reason
        | Ok plan' ->
          check_true "render(parse(render)) is the identity"
            (String.equal rendered (V.plan_to_string plan')));
    case "malformed plans fail with typed line-numbered errors" (fun () ->
        let plan, _ = freeze_model () in
        let good = V.plan_to_string plan in
        (match V.plan_of_string good with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "pristine plan rejected at line %d: %s" e.V.line
            e.V.reason);
        (* line 1: magic; 2: Q; 3: P; 4: V; 5: N; 6: first slot *)
        expect_error ~line:1 ~needle:"bad magic"
          (corrupt_line 1 (fun _ -> "paqoc-plan v9") good);
        expect_error ~line:2 ~needle:"bad integer"
          (corrupt_line 2 (fun _ -> "Q x") good);
        expect_error ~line:4 ~needle:"bad float"
          (corrupt_line 4 (fun _ -> "V 0x1p-1 zzz") good);
        expect_error ~line:6 ~needle:"expected an S, R or M slot line"
          (corrupt_line 6 (fun _ -> "X nope") good);
        expect_error ~line:6 ~needle:"unknown gate"
          (corrupt_line 6 (fun _ -> "S bogus@0") good);
        expect_error ~line:6 ~needle:"outside"
          (corrupt_line 6 (fun _ -> "S x@99") good);
        expect_error ~line:6 ~needle:"unexpected end of plan"
          (String.concat "\n"
             (List.filteri (fun i _ -> i < 5) (String.split_on_char '\n' good))));
    case "an unreadable sidecar reports an I/O error as line 0" (fun () ->
        match V.load_plan "/nonexistent/paqoc.plan" with
        | Ok _ -> Alcotest.failf "missing file loaded"
        | Error e -> check_int "line 0 flags I/O" 0 e.V.line);
    case "missing bindings raise the typed error with the missing names"
      (fun () ->
        let plan, gen = freeze_model () in
        check_true "recompile lists every free parameter"
          (try
             ignore (V.recompile plan gen ~angles:[]);
             false
           with V.Unbound_parameters missing ->
             missing = V.plan_params plan);
        check_true "recompile_full lists the unbound subset"
          (try
             ignore
               (V.recompile_full plan gen ~angles:[ ("gamma_0", 0.1) ]);
             false
           with V.Unbound_parameters missing -> missing = [ "beta_0" ]));
    slow_case "a warm recompile iteration stays under the minor-heap budget"
      (fun () ->
        let plan, gen = freeze_model () in
        let angles = all_at plan 1.9 in
        for _ = 1 to 3 do
          ignore (V.recompile plan gen ~angles)
        done;
        let reps = 50 in
        let before = Gc.minor_words () in
        for _ = 1 to reps do
          ignore (V.recompile plan gen ~angles)
        done;
        let per = (Gc.minor_words () -. before) /. float_of_int reps in
        (* measured ~tens of kwords per warm iteration (binding, pricing
           DAG, row assembly); the budget pins the order of magnitude so a
           per-iteration resynthesis or plan copy cannot creep in *)
        if per > 250_000.0 then
          Alcotest.failf
            "warm recompile allocates %.0f minor words/iteration, over the \
             250k budget — the fast path is re-doing cold work"
            per);
    slow_case "daemon sweep tables are byte-identical to in-process"
      (fun () ->
        (* the compile-sweep [--connect] contract at the service layer: a
           daemon with the sweep handler wired in and the in-process call
           must answer the same client-generated request with the same
           rendered table, byte for byte — the %.17g wire round-trip and
           the shared formatting underwrite it *)
        let params =
          Paqoc_circuit.Circuit.free_params
            ((Suite.sweep_find "qaoa").Suite.sweep_build ())
        in
        let req =
          { Protocol.default_recompile with
            Protocol.rc_angles = V.sweep_angles ~seed:11 ~n:2 params
          }
        in
        let table (s : Protocol.sweep_result) =
          let buf = Buffer.create 512 in
          Buffer.add_string buf Service.sweep_header;
          List.iteri
            (fun i it -> Buffer.add_string buf (Service.sweep_row i it))
            s.Protocol.iterations;
          Buffer.add_string buf (Service.sweep_totals s);
          Buffer.contents buf
        in
        let local = table (Service.sweep_handle ~deadline:None req) in
        let socket_path =
          let p = Filename.temp_file "paqoc_sweep_srv" ".sock" in
          Sys.remove p;
          p
        in
        let server =
          Server.create
            ~sweep:(Service.sweep_handler ())
            (Server.default_config ~socket_path)
            (Service.handler ())
        in
        let thread = Thread.create Server.run server in
        let remote =
          Fun.protect
            ~finally:(fun () ->
              Server.request_stop server;
              Thread.join thread;
              if Sys.file_exists socket_path then Sys.remove socket_path)
            (fun () ->
              Server.with_connection socket_path @@ fun fd ->
              match Server.rpc fd (Protocol.Recompile req) with
              | Protocol.Sweep s -> table s
              | Protocol.Refused e ->
                Alcotest.failf "daemon refused the sweep: %s"
                  (match e with
                  | Protocol.Bad_request m | Protocol.Internal m -> m
                  | Protocol.Overloaded -> "overloaded"
                  | Protocol.Deadline_exceeded -> "deadline"
                  | Protocol.Shutting_down -> "shutting down")
              | _ -> Alcotest.fail "unexpected daemon response")
        in
        check_true "tables byte-identical" (String.equal local remote))
  ]
