(* The incremental search battery: the engine and the fast search loop
   are pinned to their slow oracles bit-for-bit. [Criticality.Engine]
   must expose, after any sequence of stage/commit/discard/refresh, the
   exact floats a from-scratch [Criticality.analyze] computes — raw bit
   patterns, never a tolerance — and [Merger.run] must reproduce
   [Merger.run_reference]'s circuit and statistics exactly, at any
   [jobs]. The suite also pins the runtime guarantees the engine's
   workspace design makes: reachability queries allocate nothing, and a
   whole stage+discard step stays under a fixed minor-heap budget. *)
open Test_util
module Gen = Paqoc_pulse.Generator
module Dag = Paqoc_circuit.Dag
module Rewrite = Paqoc_circuit.Rewrite
module Crit = Paqoc.Criticality
module Engine = Paqoc.Criticality.Engine
module Merger = Paqoc.Merger
module Suite = Paqoc_benchmarks.Suite
module Transpile = Paqoc_topology.Transpile

let bits = Int64.bits_of_float

let check_bits msg expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %h vs %h" msg expected actual

(* ------------------------------------------------------------------ *)
(* Engine vs analyze                                                   *)
(* ------------------------------------------------------------------ *)

let case_name = function `I -> "I" | `II -> "II" | `III -> "III"

(* every exposed committed quantity must be bitwise what a from-scratch
   analysis of the same circuit against the same generator says *)
let check_engine_matches msg gen eng =
  let c = Engine.circuit eng in
  let r = Crit.analyze gen c in
  let n = Engine.n_nodes eng in
  check_int (msg ^ ": n_nodes") (Circuit.n_gates c) n;
  check_bits (msg ^ ": total") (Crit.total r) (Engine.total eng);
  for v = 0 to n - 1 do
    check_bits
      (Printf.sprintf "%s: latency %d" msg v)
      (Crit.latency r v) (Engine.latency eng v);
    check_bits
      (Printf.sprintf "%s: est %d" msg v)
      r.Crit.sched.Dag.est.(v) (Engine.est eng v);
    check_bits
      (Printf.sprintf "%s: cp_after %d" msg v)
      (Crit.cp_after r v) (Engine.cp_after eng v);
    if Crit.is_critical r v <> Engine.is_critical eng v then
      Alcotest.failf "%s: critical %d: %b vs %b" msg v (Crit.is_critical r v)
        (Engine.is_critical eng v)
  done;
  let dag = Engine.dag eng in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        if Crit.case_of r u v <> Engine.case_of eng u v then
          Alcotest.failf "%s: case (%d,%d): %s vs %s" msg u v
            (case_name (Crit.case_of r u v))
            (case_name (Engine.case_of eng u v)))
      (Dag.succs dag u)
  done

(* mergeable pairs on the current committed circuit: DAG edges whose
   contraction stays acyclic (exactly the candidates the search sees) *)
let mergeable_pairs dag =
  let n = Dag.n_nodes dag in
  let out = ref [] in
  for u = n - 1 downto 0 do
    List.iter
      (fun v ->
        if not (Dag.has_indirect_path dag u v) then out := (u, v) :: !out)
      (Dag.succs dag u)
  done;
  !out

(* drive an engine through a random merge sequence, holding it to the
   from-scratch analysis after every stage, commit, discard and refresh;
   a third of the edits also synthesise the merged pulse first, the way
   the real search does (including for merges it then rolls back) *)
let drive_engine st c =
  let gen = Gen.model_default () in
  let eng = Engine.create gen c in
  check_engine_matches "fresh" gen eng;
  let k = ref 0 in
  let steps = 4 + Random.State.int st 5 in
  (try
     for step = 1 to steps do
       let pairs = mergeable_pairs (Engine.dag eng) in
       if pairs = [] then raise Exit;
       let u, v = List.nth pairs (Random.State.int st (List.length pairs)) in
       incr k;
       let app =
         Rewrite.custom_of_nodes (Engine.dag eng) [ u; v ]
           ~name:(Printf.sprintf "tgrp%d" !k)
       in
       if Random.State.int st 3 = 0 then
         (* price the merged pulse first, like the search's attempt *)
         ignore (Gen.generate gen (fst (Gen.group_of_apps [ app ])));
       let trial = Engine.stage eng [ ([ u; v ], app) ] in
       let staged = Engine.staged_circuit eng in
       check_bits
         (Printf.sprintf "step %d: staged total" step)
         (Crit.total (Crit.analyze gen staged))
         trial;
       if Random.State.int st 4 = 0 then begin
         Engine.discard eng;
         Engine.refresh eng;
         check_engine_matches (Printf.sprintf "step %d: discarded" step) gen
           eng
       end
       else begin
         Engine.commit eng;
         check_true
           (Printf.sprintf "step %d: committed circuit" step)
           (Circuit.to_string (Engine.circuit eng) = Circuit.to_string staged);
         Engine.refresh eng;
         check_engine_matches (Printf.sprintf "step %d: committed" step) gen
           eng
       end
     done
   with Exit -> ());
  true

let engine_differential =
  QCheck.Test.make ~count:40 ~name:"engine == analyze under random merges"
    (arb_circuit ~n:4 ~max_gates:14 ())
    (fun c ->
      (* seed the edit sequence from the circuit so failures replay *)
      let st = Random.State.make [| 0x5eed; Circuit.n_gates c |] in
      drive_engine st c)

(* ------------------------------------------------------------------ *)
(* run vs run_reference                                                *)
(* ------------------------------------------------------------------ *)

let check_same_result msg (c_a, (s_a : Merger.stats)) (c_b, s_b) =
  check_true
    (msg ^ ": circuits")
    (Circuit.to_string c_a = Circuit.to_string c_b);
  check_int (msg ^ ": iterations") s_a.Merger.iterations s_b.Merger.iterations;
  check_int (msg ^ ": committed") s_a.Merger.merges_committed
    s_b.Merger.merges_committed;
  check_int (msg ^ ": rolled back") s_a.Merger.merges_rolled_back
    s_b.Merger.merges_rolled_back;
  check_bits (msg ^ ": initial latency") s_a.Merger.initial_latency
    s_b.Merger.initial_latency;
  check_bits (msg ^ ": final latency") s_a.Merger.final_latency
    s_b.Merger.final_latency

(* vary the knobs trial to trial so top_k batches, the maxN cap and
   Case-III pruning all get exercised *)
let trial = ref 0

let search_differential =
  QCheck.Test.make ~count:30
    ~name:"Merger.run == run_reference (fresh generators, jobs 1 and 4)"
    (arb_circuit ~n:4 ~max_gates:14 ())
    (fun c ->
      incr trial;
      let config =
        { Merger.default_config with
          top_k = 1 + (!trial mod 3);
          max_n = 2 + (!trial mod 2);
          prune_noncritical = !trial mod 2 = 0
        }
      in
      let reference = Merger.run_reference ~config (Gen.model_default ()) c in
      let fast = Merger.run ~config (Gen.model_default ()) c in
      check_same_result "jobs 1" reference fast;
      let fast4 = Merger.run ~config ~jobs:4 (Gen.model_default ()) c in
      check_same_result "jobs 4" reference fast4;
      true)

(* ------------------------------------------------------------------ *)
(* End-to-end suite equivalence (golden)                               *)
(* ------------------------------------------------------------------ *)

let suite_equivalence =
  slow_case "all 17 benchmarks: incremental == reference == jobs 4" (fun () ->
      List.iter
        (fun (e : Suite.entry) ->
          let physical = (Suite.transpiled e).Transpile.physical in
          let compile search jobs =
            Paqoc.compile ~jobs ~search (Gen.model_default ()) physical
          in
          let r = compile `Reference 1 in
          let i = compile `Incremental 1 in
          let i4 = compile `Incremental 4 in
          List.iter
            (fun (tag, (x : Paqoc.report)) ->
              check_true
                (Printf.sprintf "%s: grouped circuit (%s)" e.Suite.name tag)
                (Circuit.to_string r.Paqoc.grouped
                = Circuit.to_string x.Paqoc.grouped);
              check_bits
                (Printf.sprintf "%s: latency (%s)" e.Suite.name tag)
                r.Paqoc.latency x.Paqoc.latency;
              check_bits
                (Printf.sprintf "%s: esp (%s)" e.Suite.name tag)
                r.Paqoc.esp x.Paqoc.esp;
              check_int
                (Printf.sprintf "%s: groups (%s)" e.Suite.name tag)
                r.Paqoc.n_groups x.Paqoc.n_groups;
              check_same_result
                (Printf.sprintf "%s: stats (%s)" e.Suite.name tag)
                (r.Paqoc.grouped, r.Paqoc.merge_stats)
                (x.Paqoc.grouped, x.Paqoc.merge_stats))
            [ ("jobs 1", i); ("jobs 4", i4) ])
        Suite.all)

(* ------------------------------------------------------------------ *)
(* Allocation budgets                                                  *)
(* ------------------------------------------------------------------ *)

(* one whole stage+discard cycle on ham7_104 (560 episodes) measures
   ~122k minor words — the contraction's O(n) circuit/DAG rebuild; the
   ceiling pins the order of magnitude so a per-step re-analysis or an
   O(n^2) scratch allocation cannot creep back in unnoticed *)
let step_budget_words = 250_000.0

let alloc_suite =
  [ case "reachability workspace queries allocate nothing" (fun () ->
        let c = (Suite.transpiled (Suite.find "rd32_270")).Transpile.physical in
        let dag = Dag.of_circuit c in
        let n = Dag.n_nodes dag in
        let ws = Dag.reach_ws n in
        (* correctness first: agree with the allocating DFS everywhere *)
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if Dag.has_indirect_path_ws ws dag u v
               <> Dag.has_indirect_path dag u v
            then
              Alcotest.failf "ws DFS disagrees at (%d,%d)" u v
          done
        done;
        let before = Gc.minor_words () in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            ignore (Dag.has_indirect_path_ws ws dag u v)
          done
        done;
        let per =
          (Gc.minor_words () -. before) /. float_of_int (n * n)
        in
        if per > 0.5 then
          Alcotest.failf
            "has_indirect_path_ws allocates %.2f words/query — the \
             workspace contract is zero"
            per);
    slow_case "a warmed-up merge step stays under the minor-heap budget"
      (fun () ->
        let physical =
          (Suite.transpiled (Suite.find "ham7_104")).Transpile.physical
        in
        let gen = Gen.model_default () in
        let eng = Engine.create gen physical in
        let dag = Engine.dag eng in
        let u, v = List.hd (mergeable_pairs dag) in
        let app = Rewrite.custom_of_nodes dag [ u; v ] ~name:"budget" in
        let groups = [ ([ u; v ], app) ] in
        for _ = 1 to 3 do
          ignore (Engine.stage eng groups);
          Engine.discard eng
        done;
        let reps = 50 in
        let before = Gc.minor_words () in
        for _ = 1 to reps do
          ignore (Engine.stage eng groups);
          Engine.discard eng
        done;
        let per_step = (Gc.minor_words () -. before) /. float_of_int reps in
        if per_step > step_budget_words then
          Alcotest.failf
            "stage+discard allocates %.0f minor words/step, over the %.0f \
             budget — a hot-path allocation crept back in"
            per_step step_budget_words)
  ]

(* ------------------------------------------------------------------ *)
(* Priced-latency memo                                                 *)
(* ------------------------------------------------------------------ *)

let priced_memo_suite =
  [ case "warm re-analysis performs no pricing work" (fun () ->
        let c = (Suite.transpiled (Suite.find "rd32_270")).Transpile.physical in
        let gen = Gen.model_default () in
        ignore (Crit.analyze gen c);
        let cold = Gen.price_misses gen in
        check_true "cold analysis priced something" (cold > 0);
        let t1 = Crit.analyze gen c in
        check_int "warm analysis adds no misses" cold (Gen.price_misses gen);
        let t2 = Crit.analyze gen c in
        check_int "and stays warm" cold (Gen.price_misses gen);
        check_bits "memoized totals agree" (Crit.total t1) (Crit.total t2));
    case "generation writes prices through to the memo" (fun () ->
        let gen = Gen.model_default () in
        let g =
          fst
            (Gen.group_of_apps
               [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ])
        in
        let epoch0 = Gen.price_epoch gen in
        let misses0 = Gen.price_misses gen in
        let o = Gen.generate gen g in
        check_true "generate bumps the price epoch"
          (Gen.price_epoch gen > epoch0);
        (match Gen.priced_latency_of_key gen (Gen.key g) with
        | None -> Alcotest.fail "generated group missing from the memo"
        | Some l -> check_bits "write-through latency" o.Gen.latency l);
        check_bits "priced_latency reads the committed price" o.Gen.latency
          (Gen.priced_latency gen g);
        check_int "none of it counted as a miss" misses0
          (Gen.price_misses gen));
    case "an unseen group misses once, then never again" (fun () ->
        let gen = Gen.model_default () in
        let g = fst (Gen.group_of_apps [ Gate.app2 Gate.CZ 1 2 ]) in
        let misses0 = Gen.price_misses gen in
        let l1 = Gen.priced_latency gen g in
        check_int "first lookup is the miss" (misses0 + 1)
          (Gen.price_misses gen);
        let l2 = Gen.priced_latency gen g in
        check_int "second lookup is free" (misses0 + 1)
          (Gen.price_misses gen);
        check_bits "and returns the same price" l1 l2)
  ]

let suite =
  [ qcheck engine_differential;
    qcheck search_differential;
    suite_equivalence
  ]
  @ alloc_suite @ priced_memo_suite
