(* Golden regression: the 17-benchmark PAQOC-M0 latency table is pinned
   byte-for-byte. Any change to the latency model, the merge search, the
   miner or the planner that moves a single benchmark's latency or episode
   count fails here — intentional changes refresh the file with
   [make update-golden], which renders through the exact same code path. *)
open Test_util
module LT = Paqoc_benchmarks.Latency_table

(* under `dune runtest` the cwd is the test directory (the dep glob puts
   the file at golden/...); when the binary is run by hand from the repo
   root the file lives under test/ *)
let golden_path =
  if Sys.file_exists "golden/latency_table.txt" then
    "golden/latency_table.txt"
  else "test/golden/latency_table.txt"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let suite =
  [ slow_case "17-benchmark latency table matches the golden file" (fun () ->
        let golden = read_file golden_path in
        let computed = LT.render (LT.compute ()) in
        if not (String.equal golden computed) then begin
          (* diff the rows so the failure names the benchmarks that moved
             instead of dumping two blobs *)
          let gr = LT.parse golden and cr = LT.parse computed in
          let moved =
            if List.length gr <> List.length cr then
              [ Printf.sprintf "row count %d -> %d" (List.length gr)
                  (List.length cr) ]
            else
              List.concat
                (List.map2
                   (fun (g : LT.row) (c : LT.row) ->
                     if
                       String.equal g.LT.name c.LT.name
                       && g.LT.latency = c.LT.latency
                       && g.LT.n_groups = c.LT.n_groups
                     then []
                     else
                       [ Printf.sprintf
                           "%s: latency %.17g -> %.17g, episodes %d -> %d"
                           g.LT.name g.LT.latency c.LT.latency g.LT.n_groups
                           c.LT.n_groups ])
                   gr cr)
          in
          Alcotest.failf
            "latency table drifted (run `make update-golden` if \
             intentional):@.%s"
            (String.concat "\n" moved)
        end);
    case "golden file parses and covers all seventeen benchmarks" (fun () ->
        let rows = LT.parse (read_file golden_path) in
        check_int "seventeen rows" 17 (List.length rows);
        List.iter2
          (fun (r : LT.row) (e : Paqoc_benchmarks.Suite.entry) ->
            check_true
              (Printf.sprintf "row %s in Table I order" r.LT.name)
              (String.equal r.LT.name e.Paqoc_benchmarks.Suite.name);
            check_true (r.LT.name ^ " latency positive") (r.LT.latency > 0.0);
            check_true
              (r.LT.name ^ " has episodes")
              (r.LT.n_groups > 0))
          rows Paqoc_benchmarks.Suite.all)
  ]
