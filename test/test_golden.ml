(* Golden regressions, pinned byte-for-byte.

   - The 17-benchmark PAQOC-M0 latency table: any change to the latency
     model, the merge search, the miner or the planner that moves a single
     benchmark's latency or episode count fails here.
   - The GRAPE bit-determinism golden: iterations, fidelities and the full
     amplitude envelope (as [%h] hex floats) of a fixed 2-qubit CX
     optimisation under both optimisers. This is what licenses the
     allocation-free kernel rewrite: any reordering of a single
     floating-point operation in the hot path flips a bit here. It is also
     the anchor of the pulse database's byte determinism.
   - The 32-point variational sweep table: per-iteration latency, ESP and
     interp/fallback/resynth accounting of the frozen-plan fast path over
     the seeded qaoa sweep. Any change to the anchor grid, interpolation
     rule, fallback policy or slot pricing moves a byte here.

   Intentional changes refresh the files with [make update-golden], which
   renders through the exact same code paths. *)
open Test_util
module LT = Paqoc_benchmarks.Latency_table
module Grape = Paqoc_pulse.Grape

(* under `dune runtest` the cwd is the test directory (the dep glob puts
   the file at golden/...); when the binary is run by hand from the repo
   root the file lives under test/ *)
let resolve name =
  if Sys.file_exists ("golden/" ^ name) then "golden/" ^ name
  else "test/golden/" ^ name

let golden_path = resolve "latency_table.txt"
let grape_golden_path = resolve "grape_amplitudes.txt"
let canon_golden_path = resolve "canon_hit_rates.txt"
let sweep_golden_path = resolve "sweep_table.txt"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let suite =
  [ slow_case "17-benchmark latency table matches the golden file" (fun () ->
        let golden = read_file golden_path in
        let computed = LT.render (LT.compute ()) in
        if not (String.equal golden computed) then begin
          (* diff the rows so the failure names the benchmarks that moved
             instead of dumping two blobs *)
          let gr = LT.parse golden and cr = LT.parse computed in
          let moved =
            if List.length gr <> List.length cr then
              [ Printf.sprintf "row count %d -> %d" (List.length gr)
                  (List.length cr) ]
            else
              List.concat
                (List.map2
                   (fun (g : LT.row) (c : LT.row) ->
                     if
                       String.equal g.LT.name c.LT.name
                       && g.LT.latency = c.LT.latency
                       && g.LT.n_groups = c.LT.n_groups
                     then []
                     else
                       [ Printf.sprintf
                           "%s: latency %.17g -> %.17g, episodes %d -> %d"
                           g.LT.name g.LT.latency c.LT.latency g.LT.n_groups
                           c.LT.n_groups ])
                   gr cr)
          in
          Alcotest.failf
            "latency table drifted (run `make update-golden` if \
             intentional):@.%s"
            (String.concat "\n" moved)
        end);
    slow_case "GRAPE reference run matches the golden file bit-for-bit"
      (fun () ->
        let golden = read_file grape_golden_path in
        let computed = Grape.reference_golden () in
        if not (String.equal golden computed) then begin
          (* name the first drifting line — the slice index and hex floats
             say exactly which amplitude moved *)
          let gl = String.split_on_char '\n' golden
          and cl = String.split_on_char '\n' computed in
          let rec first_diff i = function
            | g :: gs, c :: cs ->
                if String.equal g c then first_diff (i + 1) (gs, cs)
                else
                  Printf.sprintf "line %d:\n  golden:   %s\n  computed: %s"
                    i g c
            | [], c :: _ -> Printf.sprintf "extra line %d: %s" i c
            | g :: _, [] -> Printf.sprintf "missing line %d: %s" i g
            | [], [] -> "lengths differ"
          in
          Alcotest.failf
            "GRAPE amplitudes drifted (bitwise; run `make update-golden` \
             if intentional):@.%s"
            (first_diff 1 (gl, cl))
        end);
    slow_case "canonical hit-rate table matches the golden file" (fun () ->
        let golden = read_file canon_golden_path in
        let computed =
          Paqoc_benchmarks.Canon_table.(render (compute ()))
        in
        if not (String.equal golden computed) then begin
          let module CT = Paqoc_benchmarks.Canon_table in
          let gr = CT.parse golden and cr = CT.parse computed in
          let moved =
            if List.length gr <> List.length cr then
              [ Printf.sprintf "row count %d -> %d" (List.length gr)
                  (List.length cr) ]
            else
              List.concat
                (List.map2
                   (fun (g : CT.row) (c : CT.row) ->
                     if g = c then []
                     else
                       [ Printf.sprintf
                           "%s: synthesized %d -> %d, hits %d -> %d, \
                            canonical %d -> %d"
                           g.CT.name g.CT.synthesized c.CT.synthesized
                           g.CT.hits c.CT.hits g.CT.canonical_hits
                           c.CT.canonical_hits ])
                   gr cr)
          in
          Alcotest.failf
            "canonical hit rates drifted (run `make update-golden` if \
             intentional):@.%s"
            (String.concat "\n" moved)
        end);
    case "canonical golden holds the paper's reuse targets" (fun () ->
        (* the acceptance floor lives in the pinned file itself: the cold
           cross-benchmark hit rate must stay >= 30%, qft > 20%, and the
           once-0%% benchmarks (supre, bb84) must keep reusing pulses *)
        let module CT = Paqoc_benchmarks.Canon_table in
        let rows = CT.parse (read_file canon_golden_path) in
        check_int "seventeen rows" 17 (List.length rows);
        let synth = List.fold_left (fun a r -> a + r.CT.synthesized) 0 rows in
        let hits = List.fold_left (fun a r -> a + r.CT.hits) 0 rows in
        let overall = float_of_int hits /. float_of_int (hits + synth) in
        check_true
          (Printf.sprintf "overall cold hit rate %.3f >= 0.30" overall)
          (overall >= 0.30);
        let rate name =
          CT.hit_rate (List.find (fun r -> r.CT.name = name) rows)
        in
        check_true "qft > 20%" (rate "qft" > 0.20);
        check_true "supre > 0%" (rate "supre" > 0.0);
        check_true "bb84 > 0%" (rate "bb84" > 0.0);
        List.iter
          (fun (r : CT.row) ->
            check_true (r.CT.name ^ " canonical subset of hits")
              (r.CT.canonical_hits <= r.CT.hits))
          rows);
    slow_case "32-point sweep table matches the golden file" (fun () ->
        let golden = read_file sweep_golden_path in
        let computed =
          Paqoc_benchmarks.Sweep_table.(render (compute ()))
        in
        if not (String.equal golden computed) then begin
          let module ST = Paqoc_benchmarks.Sweep_table in
          let gr = ST.parse golden and cr = ST.parse computed in
          let moved =
            if List.length gr <> List.length cr then
              [ Printf.sprintf "row count %d -> %d" (List.length gr)
                  (List.length cr) ]
            else
              List.concat
                (List.map2
                   (fun (g : ST.row) (c : ST.row) ->
                     if g = c then []
                     else
                       [ Printf.sprintf
                           "iter %d: latency %.17g -> %.17g, esp %.17g -> \
                            %.17g, interp/fallback/resynth %d/%d/%d -> \
                            %d/%d/%d"
                           g.ST.iter g.ST.latency c.ST.latency g.ST.esp
                           c.ST.esp g.ST.interp g.ST.fallback g.ST.resynth
                           c.ST.interp c.ST.fallback c.ST.resynth ])
                   gr cr)
          in
          Alcotest.failf
            "sweep table drifted (run `make update-golden` if \
             intentional):@.%s"
            (String.concat "\n" moved)
        end);
    case "sweep golden parses, covers the sweep and stays on the fast path"
      (fun () ->
        (* the acceptance floor lives in the pinned file: every iteration
           present and in order, every parameter slot served from the
           anchor table (model anchors price any angle in closed form, so
           a fallback here means the hull or the plan shape regressed) *)
        let module ST = Paqoc_benchmarks.Sweep_table in
        let rows = ST.parse (read_file sweep_golden_path) in
        check_int "thirty-two rows" 32 (List.length rows);
        List.iteri
          (fun i (r : ST.row) ->
            check_int (Printf.sprintf "row %d in sweep order" i) i r.ST.iter;
            check_true
              (Printf.sprintf "iter %d latency positive" i)
              (r.ST.latency > 0.0);
            check_true
              (Printf.sprintf "iter %d esp in (0,1]" i)
              (r.ST.esp > 0.0 && r.ST.esp <= 1.0);
            check_int
              (Printf.sprintf "iter %d no fallbacks" i)
              0 r.ST.fallback;
            check_true
              (Printf.sprintf "iter %d serves parameter slots" i)
              (r.ST.interp > 0))
          rows);
    case "golden file parses and covers all seventeen benchmarks" (fun () ->
        let rows = LT.parse (read_file golden_path) in
        check_int "seventeen rows" 17 (List.length rows);
        List.iter2
          (fun (r : LT.row) (e : Paqoc_benchmarks.Suite.entry) ->
            check_true
              (Printf.sprintf "row %s in Table I order" r.LT.name)
              (String.equal r.LT.name e.Paqoc_benchmarks.Suite.name);
            check_true (r.LT.name ^ " latency positive") (r.LT.latency > 0.0);
            check_true
              (r.LT.name ^ " has episodes")
              (r.LT.n_groups > 0))
          rows Paqoc_benchmarks.Suite.all)
  ]
