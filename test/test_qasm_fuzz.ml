(* QASM robustness: seeded round-trip properties over random circuits and
   a malformed-input fuzz battery. The parser's contract is binary — a
   well-formed program round-trips exactly, anything else raises a typed
   [Parse_error] (never an unhandled exception, never a junk circuit). *)
open Test_util
module Qasm = Paqoc_circuit.Qasm

let roundtrip_props =
  [ qcheck
      (QCheck.Test.make ~count:60 ~name:"printed QASM re-parses equivalently"
         (arb_circuit ~n:3 ~max_gates:10 ())
         (fun c ->
           let c' = Qasm.parse (Qasm.to_qasm c) in
           Circuit.equivalent (Circuit.flatten c) (Circuit.flatten c')));
    qcheck
      (QCheck.Test.make ~count:60 ~name:"round trip preserves shape exactly"
         (arb_circuit ~n:4 ~max_gates:8 ())
         (fun c ->
           let c' = Qasm.parse (Qasm.to_qasm c) in
           c'.Circuit.n_qubits = c.Circuit.n_qubits
           && Circuit.n_gates (Circuit.flatten c')
              = Circuit.n_gates (Circuit.flatten c)));
    qcheck
      (QCheck.Test.make ~count:40 ~name:"printing is idempotent"
         (arb_circuit ~n:3 ~max_gates:8 ())
         (fun c ->
           let once = Qasm.to_qasm c in
           String.equal once (Qasm.parse once |> Qasm.to_qasm)))
  ]

(* Every entry must raise [Parse_error] — a crash with any other exception
   or a silent acceptance fails the case. *)
let malformed =
  [ ("unknown gate", "qreg q[2];\nbadgate q[0];");
    ("missing register", "h q[0];");
    ("qubit out of range", "qreg q[1];\ncx q[0],q[7];");
    ("negative register size", "qreg q[-2];\nh q[0];");
    ("unterminated parameter", "qreg q[1];\nrz(0.5 q[0];");
    ("garbage parameter", "qreg q[1];\nrz(0.5**) q[0];");
    ("duplicate operand", "qreg q[2];\ncx q[0],q[0];");
    ("arity mismatch", "qreg q[2];\ncx q[0];");
    ("stray characters", "qreg q[2];\nh q[0]; $$$");
    ("unclosed gate body", "gate foo a { h a;\nqreg q[1];\nfoo q[0];");
    ("empty register name", "qreg [2];\nh q[0];");
    ("binary junk", "\x00\x01\x02qreg q[1];")
  ]

let fuzz_cases =
  [ case "malformed programs raise typed parse errors" (fun () ->
        List.iter
          (fun (name, src) ->
            match Qasm.parse src with
            | _ -> Alcotest.failf "%s: accepted malformed input" name
            | exception Qasm.Parse_error msg ->
              check_true
                (Printf.sprintf "%s: error message non-empty" name)
                (String.length msg > 0)
            | exception e ->
              Alcotest.failf "%s: leaked %s instead of Parse_error" name
                (Printexc.to_string e))
          malformed);
    qcheck
      (QCheck.Test.make ~count:120
         ~name:"random line mutations never leak untyped exceptions"
         (* seeded mutation of a known-good program: truncate, splice or
            corrupt one position; the parser must accept or raise
            Parse_error, nothing else *)
         QCheck.(pair (int_bound 1000) (int_bound 2))
         (fun (seed, mode) ->
           let base =
             "qreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\nrz(pi/4) \
              q[2];\nccx q[0],q[1],q[2];\nmeasure q[0] -> c[0];\n"
           in
           let rng = Random.State.make [| seed; mode; 0xfa |] in
           let n = String.length base in
           let src =
             match mode with
             | 0 -> String.sub base 0 (Random.State.int rng n)
             | 1 ->
               let i = Random.State.int rng n in
               let ch = Char.chr (32 + Random.State.int rng 95) in
               String.mapi (fun j c -> if j = i then ch else c) base
             | _ ->
               let i = Random.State.int rng n in
               String.sub base 0 i ^ "rz(" ^ String.sub base i (n - i)
           in
           match Qasm.parse src with
           | _ -> true
           | exception Qasm.Parse_error _ -> true
           | exception _ -> false))
  ]

let suite = roundtrip_props @ fuzz_cases
