(* The shared cross-run pulse cache: sharding, journaled persistence,
   crash-safe tail replay, v1/v2 migration, fault-injected appends, and
   the generator/compile integration (cold-vs-warm byte identity). *)
open Test_util
module Cache = Paqoc_pulse.Cache
module Db = Paqoc_pulse.Db_format
module Gen = Paqoc_pulse.Generator
module Faultin = Paqoc_pulse.Faultin
module Suite = Paqoc_benchmarks.Suite

let entry ?(provenance = Db.Synthesized) lat =
  { Cache.latency = lat; error = 0.001; fidelity = 0.999; provenance }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let with_tmp f =
  let path = Filename.temp_file "paqoc_cache" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let suite =
  [ case "publish, find, probe; duplicate publish is a no-op" (fun () ->
        let c = Cache.create () in
        Cache.publish c "k1" (entry 50.0);
        Cache.publish c "k1" (entry 999.0);
        (match Cache.find c "k1" with
        | Some e -> check_float "first publish wins" 50.0 e.Cache.latency
        | None -> Alcotest.fail "k1 not found");
        check_true "probe sees it too" (Cache.probe c "k1" <> None);
        check_true "missing key misses" (Cache.find c "nope" = None);
        Cache.publish_shape c "s1";
        Cache.publish_shape c "s1";
        check_true "shape present" (Cache.mem_shape c "s1");
        check_int "one entry" 1 (Cache.size c);
        check_int "one shape" 1 (Cache.n_shapes c);
        let s = Cache.stats c in
        check_int "hits" 1 s.Cache.hits;
        check_int "misses" 1 s.Cache.misses;
        check_int "publishes (dup not counted)" 1 s.Cache.publishes;
        (* probe must not count *)
        check_int "probe did not count a hit" 1 (Cache.stats c).Cache.hits);
    case "in-memory cache has no path and compacts as a no-op" (fun () ->
        let c = Cache.create () in
        check_true "no backing file" (Cache.path c = None);
        Cache.compact c;
        Cache.close c;
        check_int "no compactions" 0 (Cache.stats c).Cache.compactions);
    case "persistence round trip through close/reopen" (fun () ->
        with_tmp @@ fun path ->
        Cache.with_file path (fun c ->
            Cache.publish c "2;cx@0,1" (entry 96.0);
            Cache.publish c "3;cx@0,1;cx@1,2"
              (entry ~provenance:Db.Fallback 200.0);
            Cache.publish_shape c "2;cx@0,1");
        let bytes = read_file path in
        check_true "v3 header"
          (String.length bytes > 17
          && String.sub bytes 0 17 = "paqoc-pulse-db v3");
        check_true "closed file is fully compacted (no journal lines)"
          (not (String.exists (fun ch -> ch = '+') bytes));
        Cache.with_file path (fun c ->
            check_int "entries survive" 2 (Cache.size c);
            check_true "shape survives" (Cache.mem_shape c "2;cx@0,1");
            match Cache.find c "3;cx@0,1;cx@1,2" with
            | Some e ->
              check_true "fallback provenance survives"
                (e.Cache.provenance = Db.Fallback)
            | None -> Alcotest.fail "entry lost"));
    case "unclosed journal (simulated crash) replays on reopen" (fun () ->
        with_tmp @@ fun path ->
        let c1 = Cache.open_file path in
        Cache.publish c1 "2;cx@0,1" (entry 96.0);
        Cache.publish_shape c1 "2;cx@0,1";
        (* no close: the records live only as journal appends *)
        let bytes = read_file path in
        check_true "journal records on disk"
          (String.length bytes > 0
          &&
          match Db.parse_string bytes with
          | Ok c -> List.length c.Db.journal = 2 && c.Db.snapshot = []
          | Error _ -> false);
        Cache.with_file path (fun c2 ->
            check_int "replayed entry" 1 (Cache.size c2);
            check_true "replayed shape" (Cache.mem_shape c2 "2;cx@0,1")));
    case "torn journal tail is dropped and truncated away" (fun () ->
        with_tmp @@ fun path ->
        let good = Db.journal_line (Db.Priced ("2;cx@0,1", entry 96.0)) in
        let torn = "+K 50 0.001 0.999 q 2;h@0" (* no trailing newline *) in
        write_file path
          ("paqoc-pulse-db v3\nK 40 0.001 0.999 q 1;h@0\n" ^ good ^ "\n"
         ^ torn);
        Cache.with_file path (fun c ->
            check_int "torn record dropped" 2 (Cache.size c);
            check_true "snapshot record kept" (Cache.probe c "1;h@0" <> None);
            check_true "complete journal record kept"
              (Cache.probe c "2;cx@0,1" <> None);
            check_true "torn record not replayed"
              (Cache.probe c "2;h@0" = None);
            (* the tail must be gone from disk before new appends land *)
            let bytes = read_file path in
            check_true "file truncated to a record boundary"
              (String.length bytes > 0
              && bytes.[String.length bytes - 1] = '\n');
            Cache.publish c "3;cx@0,1;cx@1,2" (entry 150.0));
        Cache.with_file path (fun c ->
            check_int "clean tail accepts appends" 3 (Cache.size c)));
    case "compact bytes equal a fresh snapshot save" (fun () ->
        with_tmp @@ fun path ->
        with_tmp @@ fun snap ->
        let c = Cache.open_file ~compact_every:1000 path in
        List.iter
          (fun i -> Cache.publish c (Printf.sprintf "2;rz%d@0" i) (entry 10.0))
          [ 5; 3; 9; 1 ];
        Cache.publish_shape c "2;rz@0";
        Cache.save c snap;
        Cache.compact c;
        check_true "compacted file is byte-identical to save"
          (String.equal (read_file path) (read_file snap));
        check_int "compaction counted" 1 (Cache.stats c).Cache.compactions;
        Cache.close c);
    case "auto-compaction fires at compact_every appends" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file ~compact_every:4 path in
        List.iter
          (fun i -> Cache.publish c (Printf.sprintf "1;h@%d" i) (entry 40.0))
          [ 0; 1; 2; 3 ];
        check_true "journal folded into the snapshot"
          (not (String.exists (fun ch -> ch = '+') (read_file path)));
        check_true "compaction counted"
          ((Cache.stats c).Cache.compactions >= 1);
        Cache.close c);
    case "v1 and v2 snapshots migrate to v3 on open" (fun () ->
        with_tmp @@ fun path ->
        write_file path "paqoc-pulse-db v1\nK 96 0.001 0.999 2;cx@0,1\nS 2;cx@0,1\n";
        Cache.with_file path (fun c ->
            check_int "v1 entry loaded" 1 (Cache.size c);
            match Cache.find c "2;cx@0,1" with
            | Some e ->
              check_true "v1 entries default to synthesized"
                (e.Cache.provenance = Db.Synthesized)
            | None -> Alcotest.fail "v1 entry lost");
        check_true "file migrated to v3"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v3");
        write_file path
          "paqoc-pulse-db v2\nK 96 0.001 0.999 f 2;cx@0,1\nS 2;cx@0,1\n";
        Cache.with_file path (fun c ->
            match Cache.find c "2;cx@0,1" with
            | Some e ->
              check_true "v2 provenance preserved through migration"
                (e.Cache.provenance = Db.Fallback)
            | None -> Alcotest.fail "v2 entry lost");
        check_true "file migrated to v3"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v3"));
    case "malformed cache files fail loudly" (fun () ->
        with_tmp @@ fun path ->
        write_file path "not a pulse db\n";
        check_true "bad header raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure msg -> String.length msg > 0);
        write_file path "paqoc-pulse-db v2\nK 96 bogus 0.999 q k\n";
        check_true "bad number raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure _ -> true);
        write_file path "paqoc-pulse-db v2\n+K 96 0.001 0.999 q k\n";
        check_true "journal record in a snapshot file raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure _ -> true));
    case "injected journal-append fault never tears the file" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.publish c "1;h@0" (entry 40.0);
        let before = read_file path in
        Faultin.with_faults
          [ (Faultin.Journal_append_error, Faultin.First 1) ]
          (fun () ->
            check_true "publish surfaces the failure"
              (try
                 Cache.publish c "2;cx@0,1" (entry 96.0);
                 false
               with Failure msg ->
                 check_true "message names the path"
                   (String.length msg > String.length path);
                 true));
        check_true "file rolled back to the pre-append bytes"
          (String.equal before (read_file path));
        check_true "in-memory entry survives the failed append"
          (Cache.probe c "2;cx@0,1" <> None);
        (* the failed append counts as pending work, so close compacts the
           orphaned entry onto disk *)
        Cache.close c;
        Cache.with_file path (fun c2 ->
            check_int "orphaned entry persisted by close" 2 (Cache.size c2)));
    case "publish on a closed persistent cache raises" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.close c;
        Cache.close c (* idempotent *);
        check_true "publish after close raises"
          (try
             Cache.publish c "1;h@0" (entry 40.0);
             false
           with Failure _ -> true));
    slow_case "stripe-striped publishes race safely across 4 domains"
      (fun () ->
        with_tmp @@ fun path ->
        (* every domain publishes an overlapping window of keys through a
           journaled cache with an aggressive compaction cadence, so
           appends, compactions and duplicate publishes all interleave *)
        let c = Cache.open_file ~stripes:8 ~compact_every:16 path in
        let per_domain = 200 and overlap = 50 in
        let worker d () =
          for i = 0 to per_domain - 1 do
            let k =
              Printf.sprintf "1;rz%d@0" ((d * (per_domain - overlap)) + i)
            in
            Cache.publish c k (entry (float_of_int (40 + (i mod 7))));
            ignore (Cache.find c k)
          done
        in
        let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join domains;
        let distinct = (3 * (per_domain - overlap)) + per_domain in
        check_int "every distinct key present exactly once" distinct
          (Cache.size c);
        let s = Cache.stats c in
        check_int "duplicate publishes were no-ops" distinct
          s.Cache.publishes;
        check_int "every post-publish find hit" (4 * per_domain)
          s.Cache.hits;
        Cache.close c;
        Cache.with_file path (fun c2 ->
            check_int "reopened contents match" distinct (Cache.size c2)));
    case "generator consults and fills the shared cache" (fun () ->
        let cache = Cache.create () in
        let g =
          fst
            (Gen.group_of_apps
               [ Gate.app2 Gate.CX 0 1;
                 Gate.app1 (Gate.RZ (Angle.const 0.4)) 1
               ])
        in
        let gen1 = Gen.model_default () in
        Gen.set_shared_cache gen1 (Some cache);
        check_true "attachment readable" (Gen.shared_cache gen1 <> None);
        let o1 = Gen.generate gen1 g in
        check_int "first generator synthesized" 1 (Gen.pulses_generated gen1);
        check_true "published to the shared cache"
          ((Cache.stats cache).Cache.publishes > 0);
        let gen2 =
          Gen.create ~shared:cache
            (Gen.Model Paqoc_pulse.Latency_model.default)
        in
        let o2 = Gen.generate gen2 g in
        check_int "second generator synthesized nothing" 0
          (Gen.pulses_generated gen2);
        check_int "it hit instead" 1 (Gen.cache_hits gen2);
        check_float "same latency" o1.Gen.latency o2.Gen.latency;
        check_float "same error" o1.Gen.error o2.Gen.error;
        check_true "marked as a cache hit" o2.Gen.cache_hit);
    case "fallback outcomes are never published" (fun () ->
        let cache = Cache.create () in
        let gen = Gen.model_default ~retry:{ Gen.default_retry with
                                             Gen.max_attempts = 1 } () in
        Gen.set_shared_cache gen (Some cache);
        let g =
          fst
            (Gen.group_of_apps
               [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 1 2 ])
        in
        Faultin.with_faults
          [ (Faultin.Grape_diverge, Faultin.Always) ]
          (fun () ->
            let o = Gen.generate gen g in
            check_true "degraded to fallback"
              (o.Gen.provenance = Gen.Fallback));
        check_int "nothing published" 0 (Cache.stats cache).Cache.publishes;
        check_int "cache stays empty" 0 (Cache.size cache));
    case "load_database accepts the v3 journal format" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.publish c "2;cx@0,1" (entry 96.0);
        Cache.publish_shape c "2;cx@0,1";
        (* leave the journal unfolded: load must replay it like the cache *)
        let gen = Gen.model_default () in
        Gen.load_database gen path;
        check_int "v3 journal entries load" 1 (Gen.database_size gen);
        Cache.close c);
    slow_case "cold compile through an empty cache is byte-identical"
      (fun () ->
        let physical =
          (Suite.transpiled (Suite.find "simon"))
            .Paqoc_topology.Transpile.physical
        in
        let save gen =
          let path = Filename.temp_file "paqoc_cache_db" ".txt" in
          Gen.save_database gen path;
          let s = read_file path in
          Sys.remove path;
          s
        in
        (* baseline: no cache anywhere *)
        let gen0 = Gen.model_default () in
        let r0 = Paqoc.compile gen0 physical in
        let bytes0 = save gen0 in
        with_tmp @@ fun path ->
        (* cold: same compile through a fresh (empty) journaled cache *)
        let r1, bytes1, r2, bytes2 =
          Cache.with_file path (fun cache ->
              let gen1 = Gen.model_default () in
              let r1 = Paqoc.compile ~cache gen1 physical in
              let b1 = save gen1 in
              (* warm: a fresh generator over the now-full cache *)
              let gen2 = Gen.model_default () in
              let r2 = Paqoc.compile ~cache gen2 physical in
              (r1, b1, r2, save gen2))
        in
        check_true "cold run output is byte-identical to no-cache"
          (String.equal bytes0 bytes1);
        check_float "cold latency unchanged" r0.Paqoc.latency r1.Paqoc.latency;
        check_float "cold ESP unchanged" r0.Paqoc.esp r1.Paqoc.esp;
        check_int "warm run synthesized nothing" 0 r2.Paqoc.pulses_generated;
        check_float "warm latency identical" r0.Paqoc.latency
          r2.Paqoc.latency;
        check_true "warm database is byte-identical too"
          (String.equal bytes0 bytes2))
  ]
