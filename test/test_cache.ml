(* The shared cross-run pulse cache: sharding, journaled persistence,
   crash-safe tail replay, v1/v2 migration, fault-injected appends, and
   the generator/compile integration (cold-vs-warm byte identity). *)
open Test_util
module Cache = Paqoc_pulse.Cache
module Db = Paqoc_pulse.Db_format
module Gen = Paqoc_pulse.Generator
module Faultin = Paqoc_pulse.Faultin
module Suite = Paqoc_benchmarks.Suite
module Canon = Paqoc_canon.Canon

let entry ?(provenance = Db.Synthesized) lat =
  { Cache.latency = lat; error = 0.001; fidelity = 0.999; provenance }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let with_tmp f =
  let path = Filename.temp_file "paqoc_cache" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let suite =
  [ case "publish, find, probe; duplicate publish is a no-op" (fun () ->
        let c = Cache.create () in
        Cache.publish c "k1" (entry 50.0);
        Cache.publish c "k1" (entry 999.0);
        (match Cache.find c "k1" with
        | Some e -> check_float "first publish wins" 50.0 e.Cache.latency
        | None -> Alcotest.fail "k1 not found");
        check_true "probe sees it too" (Cache.probe c "k1" <> None);
        check_true "missing key misses" (Cache.find c "nope" = None);
        Cache.publish_shape c "s1";
        Cache.publish_shape c "s1";
        check_true "shape present" (Cache.mem_shape c "s1");
        check_int "one entry" 1 (Cache.size c);
        check_int "one shape" 1 (Cache.n_shapes c);
        let s = Cache.stats c in
        check_int "hits" 1 s.Cache.hits;
        check_int "misses" 1 s.Cache.misses;
        check_int "publishes (dup not counted)" 1 s.Cache.publishes;
        (* probe must not count *)
        check_int "probe did not count a hit" 1 (Cache.stats c).Cache.hits);
    case "in-memory cache has no path and compacts as a no-op" (fun () ->
        let c = Cache.create () in
        check_true "no backing file" (Cache.path c = None);
        Cache.compact c;
        Cache.close c;
        check_int "no compactions" 0 (Cache.stats c).Cache.compactions);
    case "persistence round trip through close/reopen" (fun () ->
        with_tmp @@ fun path ->
        Cache.with_file path (fun c ->
            Cache.publish c "2;cx@0,1" (entry 96.0);
            Cache.publish c "3;cx@0,1;cx@1,2"
              (entry ~provenance:Db.Fallback 200.0);
            Cache.publish_shape c "2;cx@0,1");
        let bytes = read_file path in
        check_true "v3 header"
          (String.length bytes > 17
          && String.sub bytes 0 17 = "paqoc-pulse-db v3");
        check_true "closed file is fully compacted (no journal lines)"
          (not (String.exists (fun ch -> ch = '+') bytes));
        Cache.with_file path (fun c ->
            check_int "entries survive" 2 (Cache.size c);
            check_true "shape survives" (Cache.mem_shape c "2;cx@0,1");
            match Cache.find c "3;cx@0,1;cx@1,2" with
            | Some e ->
              check_true "fallback provenance survives"
                (e.Cache.provenance = Db.Fallback)
            | None -> Alcotest.fail "entry lost"));
    case "unclosed journal (simulated crash) replays on reopen" (fun () ->
        with_tmp @@ fun path ->
        let c1 = Cache.open_file path in
        Cache.publish c1 "2;cx@0,1" (entry 96.0);
        Cache.publish_shape c1 "2;cx@0,1";
        (* no close: the records live only as journal appends *)
        let bytes = read_file path in
        check_true "journal records on disk"
          (String.length bytes > 0
          &&
          match Db.parse_string bytes with
          | Ok c -> List.length c.Db.journal = 2 && c.Db.snapshot = []
          | Error _ -> false);
        Cache.with_file path (fun c2 ->
            check_int "replayed entry" 1 (Cache.size c2);
            check_true "replayed shape" (Cache.mem_shape c2 "2;cx@0,1")));
    case "torn journal tail is dropped and truncated away" (fun () ->
        with_tmp @@ fun path ->
        let good = Db.journal_line (Db.Priced ("2;cx@0,1", entry 96.0)) in
        let torn = "+K 50 0.001 0.999 q 2;h@0" (* no trailing newline *) in
        write_file path
          ("paqoc-pulse-db v3\nK 40 0.001 0.999 q 1;h@0\n" ^ good ^ "\n"
         ^ torn);
        Cache.with_file path (fun c ->
            check_int "torn record dropped" 2 (Cache.size c);
            check_true "snapshot record kept" (Cache.probe c "1;h@0" <> None);
            check_true "complete journal record kept"
              (Cache.probe c "2;cx@0,1" <> None);
            check_true "torn record not replayed"
              (Cache.probe c "2;h@0" = None);
            (* the tail must be gone from disk before new appends land *)
            let bytes = read_file path in
            check_true "file truncated to a record boundary"
              (String.length bytes > 0
              && bytes.[String.length bytes - 1] = '\n');
            Cache.publish c "3;cx@0,1;cx@1,2" (entry 150.0));
        Cache.with_file path (fun c ->
            check_int "clean tail accepts appends" 3 (Cache.size c)));
    case "compact bytes equal a fresh snapshot save" (fun () ->
        with_tmp @@ fun path ->
        with_tmp @@ fun snap ->
        let c = Cache.open_file ~compact_every:1000 path in
        List.iter
          (fun i -> Cache.publish c (Printf.sprintf "2;rz%d@0" i) (entry 10.0))
          [ 5; 3; 9; 1 ];
        Cache.publish_shape c "2;rz@0";
        Cache.save c snap;
        Cache.compact c;
        check_true "compacted file is byte-identical to save"
          (String.equal (read_file path) (read_file snap));
        check_int "compaction counted" 1 (Cache.stats c).Cache.compactions;
        Cache.close c);
    case "auto-compaction fires at compact_every appends" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file ~compact_every:4 path in
        List.iter
          (fun i -> Cache.publish c (Printf.sprintf "1;h@%d" i) (entry 40.0))
          [ 0; 1; 2; 3 ];
        check_true "journal folded into the snapshot"
          (not (String.exists (fun ch -> ch = '+') (read_file path)));
        check_true "compaction counted"
          ((Cache.stats c).Cache.compactions >= 1);
        Cache.close c);
    case "v1 and v2 snapshots migrate to v3 on open" (fun () ->
        with_tmp @@ fun path ->
        write_file path "paqoc-pulse-db v1\nK 96 0.001 0.999 2;cx@0,1\nS 2;cx@0,1\n";
        Cache.with_file path (fun c ->
            check_int "v1 entry loaded" 1 (Cache.size c);
            match Cache.find c "2;cx@0,1" with
            | Some e ->
              check_true "v1 entries default to synthesized"
                (e.Cache.provenance = Db.Synthesized)
            | None -> Alcotest.fail "v1 entry lost");
        check_true "file migrated to v3"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v3");
        write_file path
          "paqoc-pulse-db v2\nK 96 0.001 0.999 f 2;cx@0,1\nS 2;cx@0,1\n";
        Cache.with_file path (fun c ->
            match Cache.find c "2;cx@0,1" with
            | Some e ->
              check_true "v2 provenance preserved through migration"
                (e.Cache.provenance = Db.Fallback)
            | None -> Alcotest.fail "v2 entry lost");
        check_true "file migrated to v3"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v3"));
    case "malformed cache files fail loudly" (fun () ->
        with_tmp @@ fun path ->
        write_file path "not a pulse db\n";
        check_true "bad header raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure msg -> String.length msg > 0);
        write_file path "paqoc-pulse-db v2\nK 96 bogus 0.999 q k\n";
        check_true "bad number raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure _ -> true);
        write_file path "paqoc-pulse-db v2\n+K 96 0.001 0.999 q k\n";
        check_true "journal record in a snapshot file raises"
          (try
             ignore (Cache.open_file path);
             false
           with Failure _ -> true));
    case "injected journal-append fault never tears the file" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.publish c "1;h@0" (entry 40.0);
        let before = read_file path in
        Faultin.with_faults
          [ (Faultin.Journal_append_error, Faultin.First 1) ]
          (fun () ->
            check_true "publish surfaces the failure"
              (try
                 Cache.publish c "2;cx@0,1" (entry 96.0);
                 false
               with Failure msg ->
                 check_true "message names the path"
                   (String.length msg > String.length path);
                 true));
        check_true "file rolled back to the pre-append bytes"
          (String.equal before (read_file path));
        check_true "in-memory entry survives the failed append"
          (Cache.probe c "2;cx@0,1" <> None);
        (* the failed append counts as pending work, so close compacts the
           orphaned entry onto disk *)
        Cache.close c;
        Cache.with_file path (fun c2 ->
            check_int "orphaned entry persisted by close" 2 (Cache.size c2)));
    case "publish on a closed persistent cache raises" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.close c;
        Cache.close c (* idempotent *);
        check_true "publish after close raises"
          (try
             Cache.publish c "1;h@0" (entry 40.0);
             false
           with Failure _ -> true));
    slow_case "stripe-striped publishes race safely across 4 domains"
      (fun () ->
        with_tmp @@ fun path ->
        (* every domain publishes an overlapping window of keys through a
           journaled cache with an aggressive compaction cadence, so
           appends, compactions and duplicate publishes all interleave *)
        let c = Cache.open_file ~stripes:8 ~compact_every:16 path in
        let per_domain = 200 and overlap = 50 in
        let worker d () =
          for i = 0 to per_domain - 1 do
            let k =
              Printf.sprintf "1;rz%d@0" ((d * (per_domain - overlap)) + i)
            in
            Cache.publish c k (entry (float_of_int (40 + (i mod 7))));
            ignore (Cache.find c k)
          done
        in
        let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join domains;
        let distinct = (3 * (per_domain - overlap)) + per_domain in
        check_int "every distinct key present exactly once" distinct
          (Cache.size c);
        let s = Cache.stats c in
        check_int "duplicate publishes were no-ops" distinct
          s.Cache.publishes;
        check_int "every post-publish find hit" (4 * per_domain)
          s.Cache.hits;
        Cache.close c;
        Cache.with_file path (fun c2 ->
            check_int "reopened contents match" distinct (Cache.size c2)));
    case "generator consults and fills the shared cache" (fun () ->
        let cache = Cache.create () in
        let g =
          fst
            (Gen.group_of_apps
               [ Gate.app2 Gate.CX 0 1;
                 Gate.app1 (Gate.RZ (Angle.const 0.4)) 1
               ])
        in
        let gen1 = Gen.model_default () in
        Gen.set_shared_cache gen1 (Some cache);
        check_true "attachment readable" (Gen.shared_cache gen1 <> None);
        let o1 = Gen.generate gen1 g in
        check_int "first generator synthesized" 1 (Gen.pulses_generated gen1);
        check_true "published to the shared cache"
          ((Cache.stats cache).Cache.publishes > 0);
        let gen2 =
          Gen.create ~shared:cache
            (Gen.Model Paqoc_pulse.Latency_model.default)
        in
        let o2 = Gen.generate gen2 g in
        check_int "second generator synthesized nothing" 0
          (Gen.pulses_generated gen2);
        check_int "it hit instead" 1 (Gen.cache_hits gen2);
        check_float "same latency" o1.Gen.latency o2.Gen.latency;
        check_float "same error" o1.Gen.error o2.Gen.error;
        check_true "marked as a cache hit" o2.Gen.cache_hit);
    case "fallback outcomes are never published" (fun () ->
        let cache = Cache.create () in
        let gen = Gen.model_default ~retry:{ Gen.default_retry with
                                             Gen.max_attempts = 1 } () in
        Gen.set_shared_cache gen (Some cache);
        let g =
          fst
            (Gen.group_of_apps
               [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 1 2 ])
        in
        Faultin.with_faults
          [ (Faultin.Grape_diverge, Faultin.Always) ]
          (fun () ->
            let o = Gen.generate gen g in
            check_true "degraded to fallback"
              (o.Gen.provenance = Gen.Fallback));
        check_int "nothing published" 0 (Cache.stats cache).Cache.publishes;
        check_int "cache stays empty" 0 (Cache.size cache));
    case "load_database accepts the v3 journal format" (fun () ->
        with_tmp @@ fun path ->
        let c = Cache.open_file path in
        Cache.publish c "2;cx@0,1" (entry 96.0);
        Cache.publish_shape c "2;cx@0,1";
        (* leave the journal unfolded: load must replay it like the cache *)
        let gen = Gen.model_default () in
        Gen.load_database gen path;
        check_int "v3 journal entries load" 1 (Gen.database_size gen);
        Cache.close c);
    slow_case "cold compile through an empty cache is byte-identical"
      (fun () ->
        let physical =
          (Suite.transpiled (Suite.find "simon"))
            .Paqoc_topology.Transpile.physical
        in
        let save gen =
          let path = Filename.temp_file "paqoc_cache_db" ".txt" in
          Gen.save_database gen path;
          let s = read_file path in
          Sys.remove path;
          s
        in
        (* baseline: no cache anywhere *)
        let gen0 = Gen.model_default () in
        let r0 = Paqoc.compile gen0 physical in
        let bytes0 = save gen0 in
        with_tmp @@ fun path ->
        (* cold: same compile through a fresh (empty) journaled cache *)
        let r1, bytes1, r2, bytes2 =
          Cache.with_file path (fun cache ->
              let gen1 = Gen.model_default () in
              let r1 = Paqoc.compile ~cache gen1 physical in
              let b1 = save gen1 in
              (* warm: a fresh generator over the now-full cache *)
              let gen2 = Gen.model_default () in
              let r2 = Paqoc.compile ~cache gen2 physical in
              (r1, b1, r2, save gen2))
        in
        check_true "cold run output is byte-identical to no-cache"
          (String.equal bytes0 bytes1);
        check_float "cold latency unchanged" r0.Paqoc.latency r1.Paqoc.latency;
        check_float "cold ESP unchanged" r0.Paqoc.esp r1.Paqoc.esp;
        check_int "warm run synthesized nothing" 0 r2.Paqoc.pulses_generated;
        check_float "warm latency identical" r0.Paqoc.latency
          r2.Paqoc.latency;
        check_true "warm database is byte-identical too"
          (String.equal bytes0 bytes2));
    case "v4 class records persist and reload" (fun () ->
        with_tmp @@ fun path ->
        let h = Canon.unitary_to_floats (Gate.unitary Gate.H) in
        Cache.with_file path (fun c ->
            Cache.publish c "1;h@0" (entry 40.0);
            Cache.publish_class c
              { Db.class_key = "1q:1570796"; n_qubits = 1; unitary = h;
                rep_key = "1;h@0" };
            check_int "one class held" 1 (Cache.n_classes c));
        check_true "file upgraded to v4"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v4");
        Cache.with_file path (fun c ->
            check_int "class survives reopen" 1 (Cache.n_classes c);
            match Cache.probe_class c "1q:1570796" with
            | None -> Alcotest.fail "class record lost"
            | Some ci ->
              check_true "rep key survives" (ci.Db.rep_key = "1;h@0");
              check_int "unitary floats survive" (Array.length h)
                (Array.length ci.Db.unitary);
              check_true "floats roundtrip exactly"
                (Array.for_all2 ( = ) h ci.Db.unitary)));
    case "first class publish upgrades a v3 file in place" (fun () ->
        with_tmp @@ fun path ->
        Cache.with_file path (fun c -> Cache.publish c "1;h@0" (entry 40.0));
        check_true "starts as v3"
          (String.sub (read_file path) 0 17 = "paqoc-pulse-db v3");
        Cache.with_file path (fun c ->
            Cache.publish_class c
              { Db.class_key = "1q:0"; n_qubits = 1;
                unitary = Canon.unitary_to_floats (Cmat.identity 2);
                rep_key = "1;h@0" };
            (* the upgrade is a compaction, visible before close *)
            check_true "v4 header already on disk"
              (String.sub (read_file path) 0 17 = "paqoc-pulse-db v4");
            (* a duplicate class key is a no-op: first publisher wins *)
            Cache.publish_class c
              { Db.class_key = "1q:0"; n_qubits = 1;
                unitary = Canon.unitary_to_floats (Cmat.identity 2);
                rep_key = "9;other" };
            check_int "duplicate not recorded" 1 (Cache.n_classes c);
            match Cache.probe_class c "1q:0" with
            | Some ci -> check_true "first rep kept" (ci.Db.rep_key = "1;h@0")
            | None -> Alcotest.fail "class lost"));
    case "malformed class sections load as typed errors" (fun () ->
        with_tmp @@ fun path ->
        let expect_error want body =
          write_file path body;
          try
            ignore (Cache.open_file path);
            Alcotest.failf "expected failure %S" want
          with Failure msg ->
            let contains s sub =
              let n = String.length s and m = String.length sub in
              let rec go i = i + m <= n
                             && (String.sub s i m = sub || go (i + 1)) in
              go 0
            in
            check_true
              (Printf.sprintf "%S mentions %S" msg want)
              (contains msg want)
        in
        expect_error "class record in a pre-v4 file"
          "paqoc-pulse-db v3\nC 1q:0 1 1 0 0 0 0 0 1 0 k\n";
        expect_error "bad class arity"
          "paqoc-pulse-db v4\nC 1q:0 nine 1 0 0 0 0 0 1 0 k\n";
        expect_error "bad class arity"
          "paqoc-pulse-db v4\nC 1q:0 7 1 0 0 0 0 0 1 0 k\n";
        expect_error "bad class float"
          "paqoc-pulse-db v4\nC 1q:0 1 1 0 bogus 0 0 0 1 0 k\n";
        expect_error "truncated class record"
          "paqoc-pulse-db v4\nC 1q:0 1 1 0 0 0\n";
        expect_error "bad C line" "paqoc-pulse-db v4\nC 2q:0\n");
    case "v4 snapshots round-trip byte-stably" (fun () ->
        with_tmp @@ fun path ->
        Cache.with_file path (fun c ->
            Cache.publish c "2;cx@0,1" (entry 96.0);
            Cache.publish c "2;cz@0,1" (entry 96.0);
            Cache.publish_shape c "2;cx@0,1";
            Cache.publish_class c
              { Db.class_key = "2q:0:0:1000000:0"; n_qubits = 2;
                unitary = Canon.unitary_to_floats (Gate.unitary Gate.CX);
                rep_key = "2;cx@0,1" });
        let bytes1 = read_file path in
        check_true "v4 header" (String.sub bytes1 0 17 = "paqoc-pulse-db v4");
        (* open/close with no writes must not move a byte *)
        Cache.with_file path (fun c ->
            check_int "classes loaded" 1 (Cache.n_classes c));
        check_true "reopen/close is byte-stable"
          (String.equal bytes1 (read_file path));
        (* and a fresh save of the loaded contents reproduces the bytes *)
        with_tmp @@ fun snap ->
        Cache.with_file path (fun c -> Cache.save c snap);
        check_true "save reproduces the snapshot bytes"
          (String.equal bytes1 (read_file snap)));
    case "find_canonical consults both tiers with honest counters"
      (fun () ->
        let c = Cache.create () in
        let rep_u = Gate.unitary Gate.H in
        Cache.publish c "1;h@0" (entry 40.0);
        Cache.publish_class c
          { Db.class_key = "1q:1570796"; n_qubits = 1;
            unitary = Canon.unitary_to_floats rep_u; rep_key = "1;h@0" };
        let validate target ci =
          match Canon.unitary_of_floats ~n_qubits:ci.Db.n_qubits
                  ci.Db.unitary with
          | Error _ -> None
          | Ok rep -> Canon.relate ~rep ~target
        in
        (* exact tier *)
        (match
           Cache.find_canonical c ~key:"1;h@0"
             ~class_key:(Some "1q:1570796")
             ~validate:(validate (Gate.unitary Gate.SX))
         with
        | Cache.Hit_exact e -> check_float "exact entry" 40.0 e.Cache.latency
        | _ -> Alcotest.fail "expected an exact hit");
        (* class tier: SX is a class-mate of H *)
        (match
           Cache.find_canonical c ~key:"1;sx@0"
             ~class_key:(Some "1q:1570796")
             ~validate:(validate (Gate.unitary Gate.SX))
         with
        | Cache.Hit_class (e, ci, (l, r)) ->
          check_float "replayed entry" 40.0 e.Cache.latency;
          check_true "class record surfaced" (ci.Db.rep_key = "1;h@0");
          check_mat_phase ~tol:1e-6 "correction verifies"
            (Gate.unitary Gate.SX)
            (Cmat.mul l (Cmat.mul rep_u r))
        | _ -> Alcotest.fail "expected a class hit");
        (* failed validation is an ordinary miss, not a hit *)
        (match
           Cache.find_canonical c ~key:"2;swap@0,1"
             ~class_key:(Some "1q:1570796")
             ~validate:(fun _ -> None)
         with
        | Cache.Tiered_miss -> ()
        | _ -> Alcotest.fail "failed validation must miss");
        (* unknown class key, and no class key at all *)
        (match
           Cache.find_canonical c ~key:"nope" ~class_key:(Some "1q:999")
             ~validate:(fun _ -> None)
         with
        | Cache.Tiered_miss -> ()
        | _ -> Alcotest.fail "unknown class must miss");
        (match
           Cache.find_canonical c ~key:"nope" ~class_key:None
             ~validate:(fun _ -> None)
         with
        | Cache.Tiered_miss -> ()
        | _ -> Alcotest.fail "no class key degrades to find");
        let s = Cache.stats c in
        check_int "hits: exact + class" 2 s.Cache.hits;
        check_int "canonical subset" 1 s.Cache.canonical_hits;
        check_int "misses: the three failures" 3 s.Cache.misses);
    case "note_consult drives the same counters" (fun () ->
        let c = Cache.create () in
        Cache.note_consult c `Hit;
        Cache.note_consult c `Canonical_hit;
        Cache.note_consult c `Miss;
        let s = Cache.stats c in
        check_int "two hits" 2 s.Cache.hits;
        check_int "one canonical" 1 s.Cache.canonical_hits;
        check_int "one miss" 1 s.Cache.misses);
    slow_case "canonical compile publishes classes; off mode stays v3"
      (fun () ->
        let physical =
          (Suite.transpiled (Suite.find "bb84"))
            .Paqoc_topology.Transpile.physical
        in
        with_tmp @@ fun off_path ->
        Cache.with_file off_path (fun cache ->
            let gen = Gen.model_default () in
            ignore (Paqoc.compile ~cache gen physical);
            check_int "off mode records no classes" 0 (Cache.n_classes cache);
            check_int "off mode scores no canonical hits" 0
              (Cache.stats cache).Cache.canonical_hits);
        let off = read_file off_path in
        check_true "off mode file stays v3"
          (String.sub off 0 17 = "paqoc-pulse-db v3");
        with_tmp @@ fun on_path ->
        Cache.with_file on_path (fun cache ->
            let gen = Gen.model_default () in
            ignore (Paqoc.compile ~cache ~canonical:true gen physical);
            check_true "classes published" (Cache.n_classes cache > 0);
            check_true "in-batch class-mates replayed"
              ((Cache.stats cache).Cache.canonical_hits > 0));
        check_true "canonical file is v4"
          (String.sub (read_file on_path) 0 17 = "paqoc-pulse-db v4"))
  ]
