(* Concurrency: the worker pool, the mutex-protected pulse database under
   domain fire, and the serial-equivalence guarantee of the batch API. *)
open Test_util
module Gen = Paqoc_pulse.Generator
module Pool = Paqoc_pulse.Pool

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let db_bytes gen =
  let path = Filename.temp_file "paqoc_par" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gen.save_database gen path;
      read_file path)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [ case "pool map preserves input order" (fun () ->
        let input = Array.init 50 Fun.id in
        let out =
          Pool.with_pool ~jobs:4 (fun p -> Pool.map p (fun x -> x * x) input)
        in
        check_true "squares in order"
          (out = Array.map (fun x -> x * x) input));
    case "pool runs inline at jobs=1" (fun () ->
        let p = Pool.create () in
        let side = ref [] in
        List.iter
          (fun i -> ignore (Pool.submit p (fun () -> side := i :: !side)))
          [ 1; 2; 3 ];
        Pool.shutdown p;
        check_true "submission order" (!side = [ 3; 2; 1 ]);
        check_int "one slot" 1 (Array.length (Pool.task_counts p));
        check_int "three tasks" 3 (Pool.task_counts p).(0));
    case "pool propagates worker exceptions" (fun () ->
        Pool.with_pool ~jobs:2 (fun p ->
            let fut = Pool.submit p (fun () -> failwith "boom") in
            check_true "raises"
              (try
                 ignore (Pool.await fut);
                 false
               with Failure msg -> String.equal msg "boom")));
    case "pool accounts every task across workers" (fun () ->
        let total =
          Pool.with_pool ~jobs:3 (fun p ->
              ignore (Pool.map p (fun x -> x + 1) (Array.init 40 Fun.id));
              Array.fold_left ( + ) 0 (Pool.task_counts p))
        in
        check_int "40 tasks merged over workers" 40 total);
    case "pool rejects bad worker counts" (fun () ->
        check_true "raises"
          (try
             ignore (Pool.create ~jobs:0 ());
             false
           with Invalid_argument _ -> true))
  ]

(* ------------------------------------------------------------------ *)
(* Shared-generator stress                                             *)
(* ------------------------------------------------------------------ *)

(* a deterministic family of overlapping groups: 12 distinct shapes, many
   permuted-qubit repeats so domains race on the same keys *)
let stress_groups () =
  let base =
    [ [ Gate.app2 Gate.CX 0 1 ];
      [ Gate.app2 Gate.CX 1 0 ];
      [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ];
      [ Gate.app2 Gate.CX 0 1; Gate.app1 Gate.H 1 ];
      [ Gate.app1 Gate.X 0 ];
      [ Gate.app1 Gate.SX 0 ];
      [ Gate.app1 (Gate.RZ (Angle.const 0.4)) 0; Gate.app1 Gate.H 0 ];
      [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 1 2 ];
      [ Gate.app2 Gate.CZ 0 1; Gate.app1 Gate.T 0 ];
      [ Gate.app1 Gate.H 0; Gate.app1 Gate.H 1; Gate.app2 Gate.CX 0 1 ];
      [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 0 1 ];
      [ Gate.app1 Gate.T 2; Gate.app2 Gate.CX 2 3 ]
    ]
  in
  (* permuted-qubit copies share cache keys with their originals *)
  let shift k apps =
    List.map
      (fun (a : Gate.app) ->
        { a with Gate.qubits = List.map (fun q -> q + k) a.Gate.qubits })
      apps
  in
  List.concat_map
    (fun apps -> [ apps; shift 5 apps; shift 11 apps ])
    base
  |> List.map (fun apps -> fst (Gen.group_of_apps apps))

let stress_test () =
  let gen = Gen.model_default () in
  let groups = Array.of_list (stress_groups ()) in
  let n = Array.length groups in
  let n_domains = 4 in
  let rounds = 5 in
  (* each domain hammers every group, starting at a different offset so
     the interleavings differ *)
  let worker d () =
    for r = 0 to rounds - 1 do
      for i = 0 to n - 1 do
        let g = groups.((i + (d * 7) + r) mod n) in
        ignore (Gen.generate gen g)
      done
    done
  in
  let domains =
    List.init n_domains (fun d -> Domain.spawn (worker d))
  in
  List.iter Domain.join domains;
  let calls = n_domains * rounds * n in
  check_int "every call is a hit or a generation" calls
    (Gen.cache_hits gen + Gen.pulses_generated gen);
  (* atomic generate: a key can never be priced twice *)
  check_int "no duplicate priced entries" (Gen.database_size gen)
    (Gen.pulses_generated gen);
  (* the database equals a serial run over the same groups *)
  let serial = Gen.model_default () in
  Array.iter (fun g -> ignore (Gen.generate serial g)) groups;
  check_int "same entry count as serial" (Gen.database_size serial)
    (Gen.database_size gen);
  check_true "database bytes equal serial"
    (String.equal (db_bytes serial) (db_bytes gen))

(* ------------------------------------------------------------------ *)
(* Batch determinism                                                   *)
(* ------------------------------------------------------------------ *)

let batch = stress_groups ()

let batch_determinism_model () =
  let run jobs =
    let gen = Gen.model_default () in
    let outs = Gen.generate_batch ~jobs gen batch in
    (gen, outs)
  in
  let gen1, outs1 = run 1 in
  let gen4, outs4 = run 4 in
  check_int "same batch size" (List.length outs1) (List.length outs4);
  List.iter2
    (fun (a : Gen.outcome) (b : Gen.outcome) ->
      check_float "latency" a.Gen.latency b.Gen.latency;
      check_float "error" a.Gen.error b.Gen.error;
      check_float "gen_seconds" a.Gen.gen_seconds b.Gen.gen_seconds;
      check_true "seeded flag" (a.Gen.seeded = b.Gen.seeded);
      check_true "cache_hit flag" (a.Gen.cache_hit = b.Gen.cache_hit))
    outs1 outs4;
  check_float "total_seconds" (Gen.total_seconds gen1)
    (Gen.total_seconds gen4);
  check_int "pulses_generated" (Gen.pulses_generated gen1)
    (Gen.pulses_generated gen4);
  check_int "cache_hits" (Gen.cache_hits gen1) (Gen.cache_hits gen4);
  check_true "seed breakdown"
    (Gen.seed_breakdown gen1 = Gen.seed_breakdown gen4);
  check_true "byte-identical database"
    (String.equal (db_bytes gen1) (db_bytes gen4))

let batch_matches_serial_loop () =
  (* the batch API at jobs=1 must equal the plain serial loop *)
  let looped = Gen.model_default () in
  List.iter (fun g -> ignore (Gen.generate looped g)) batch;
  let batched = Gen.model_default () in
  ignore (Gen.generate_batch batched batch);
  check_float "total_seconds" (Gen.total_seconds looped)
    (Gen.total_seconds batched);
  check_true "seed breakdown"
    (Gen.seed_breakdown looped = Gen.seed_breakdown batched);
  check_true "byte-identical database"
    (String.equal (db_bytes looped) (db_bytes batched))

let batch_determinism_qoc () =
  (* small 1-qubit targets keep real GRAPE affordable; distinct shapes on
     purpose so both runs do cold synthesis *)
  let groups =
    List.map
      (fun apps -> fst (Gen.group_of_apps apps))
      [ [ Gate.app1 Gate.X 0 ];
        [ Gate.app1 Gate.H 0 ];
        [ Gate.app1 Gate.SX 0; Gate.app1 Gate.T 0 ];
        [ Gate.app1 (Gate.RZ (Angle.const 0.7)) 0; Gate.app1 Gate.H 0 ]
      ]
  in
  let run jobs =
    let gen = Gen.qoc_default () in
    let outs = Gen.generate_batch ~jobs gen groups in
    (db_bytes gen, outs)
  in
  let db1, outs1 = run 1 in
  let db2, outs2 = run 2 in
  List.iter2
    (fun (a : Gen.outcome) (b : Gen.outcome) ->
      check_float "latency" a.Gen.latency b.Gen.latency;
      check_float "fidelity" a.Gen.fidelity b.Gen.fidelity)
    outs1 outs2;
  check_true "byte-identical database" (String.equal db1 db2)

(* ------------------------------------------------------------------ *)
(* Wall-clock accounting                                               *)
(* ------------------------------------------------------------------ *)

(* Regression for the Sys.time bug: [gen_seconds] must be per-task wall
   time on the monotonic clock. [Sys.time] reads process-wide CPU time,
   so with [jobs = N] every task was also charged the CPU the other N-1
   domains burned while it ran, inflating the accounted sum by ~N× — the
   exact numbers the reproduction exists to report. With wall-clock
   accounting the parallel sum stays within a small factor of the serial
   sum. True parallel hardware keeps per-task wall time flat; when the
   host has fewer cores than workers, oversubscription legitimately
   stretches per-task wall time, so the test caps [jobs] at the host's
   core count. *)
let wall_clock_accounting () =
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let groups =
    List.map
      (fun apps -> fst (Gen.group_of_apps apps))
      [ [ Gate.app1 Gate.X 0 ];
        [ Gate.app1 Gate.H 0 ];
        [ Gate.app1 Gate.SX 0; Gate.app1 Gate.T 0 ];
        [ Gate.app1 (Gate.RZ (Angle.const 0.7)) 0; Gate.app1 Gate.H 0 ]
      ]
  in
  let accounted_sum jobs =
    let gen = Gen.qoc_default () in
    let outs = Gen.generate_batch ~jobs gen groups in
    List.fold_left
      (fun acc (o : Gen.outcome) -> acc +. o.Gen.gen_seconds)
      0.0 outs
  in
  let serial = accounted_sum 1 in
  let parallel = accounted_sum jobs in
  check_true "tasks account positive wall time" (serial > 0.0);
  (* CPU-time accounting would put this at ~[jobs]x; allow 2x for noise *)
  check_true "parallel accounted sum stays wall-clock-consistent"
    (parallel <= (serial *. 2.0) +. 0.05)

let suite =
  pool_tests
  @ [ case "4 domains share one generator safely" stress_test;
      case "generate_batch: jobs=4 equals jobs=1 (model backend)"
        batch_determinism_model;
      case "generate_batch at jobs=1 equals the serial loop"
        batch_matches_serial_loop;
      slow_case "generate_batch: jobs=2 equals jobs=1 (QOC backend)"
        batch_determinism_qoc;
      slow_case "gen_seconds is per-task wall time under parallelism"
        wall_clock_accounting
    ]
