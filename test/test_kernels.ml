(* In-place kernel layer: every [*_into] kernel must be bit-for-bit
   identical to its allocating counterpart — not "close", the same
   Int64 pattern in every cell. That is the contract that lets GRAPE's
   hot path swap between the two formulations without perturbing the
   pulse database's byte determinism, so the checks here compare raw
   float bits, never a tolerance. The suite also pins the two runtime
   guarantees the workspace design makes: a warmed-up [Grape.evaluate]
   stays under a fixed minor-heap budget per call, and the L-BFGS
   curvature history never grows past its window. *)
open Test_util
module Expm = Paqoc_linalg.Expm
module Hamiltonian = Paqoc_pulse.Hamiltonian
module Grape = Paqoc_pulse.Grape

(* ------------------------------------------------------------------ *)
(* Bitwise equality                                                    *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let check_bits_mat msg expected actual =
  let rows = Cmat.rows expected and cols = Cmat.cols expected in
  check_int (msg ^ ": rows") rows (Cmat.rows actual);
  check_int (msg ^ ": cols") cols (Cmat.cols actual);
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let er = Cmat.get_re expected r c and ei = Cmat.get_im expected r c in
      let ar = Cmat.get_re actual r c and ai = Cmat.get_im actual r c in
      if bits er <> bits ar || bits ei <> bits ai then
        Alcotest.failf "%s: (%d,%d) differs: %h%+hi vs %h%+hi" msg r c er ei
          ar ai
    done
  done

let check_bits_float msg expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %h vs %h" msg expected actual

(* ------------------------------------------------------------------ *)
(* Seeded random matrices (with exact zeros, to drive the zero-skip     *)
(* branches of [mul] through both formulations)                         *)
(* ------------------------------------------------------------------ *)

let entry st =
  if Random.State.int st 5 = 0 then 0.0
  else Random.State.float st 2.0 -. 1.0

let rand_mat st rows cols =
  Cmat.init rows cols (fun _ _ -> Cx.make (entry st) (entry st))

(* random Hermitian matrix, for the exponential kernels *)
let rand_herm st n =
  let m = rand_mat st n n in
  let h = Cmat.create n n in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let re = 0.5 *. (Cmat.get_re m r c +. Cmat.get_re m c r)
      and im = 0.5 *. (Cmat.get_im m r c -. Cmat.get_im m c r) in
      Cmat.set_re_im h r c re im
    done
  done;
  h

let scalar st = Cx.make (entry st) (entry st)

(* one deterministic state per test so cases stay order-independent *)
let state () = Random.State.make [| 0x5eed; 0xca7 |]

let dims = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* Element-wise kernels vs allocating counterparts                      *)
(* ------------------------------------------------------------------ *)

let elementwise_suite =
  [ case "blit copies bit-for-bit across dims 1-8" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let src = rand_mat st n n in
            let dst = Cmat.create n n in
            Cmat.blit ~src ~dst;
            check_bits_mat (Printf.sprintf "blit dim %d" n) src dst)
          dims);
    case "set_zero and set_identity match the constructors" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let m = rand_mat st n n in
            Cmat.set_zero m;
            check_bits_mat
              (Printf.sprintf "set_zero dim %d" n)
              (Cmat.create n n) m;
            let m = rand_mat st n n in
            Cmat.set_identity m;
            check_bits_mat
              (Printf.sprintf "set_identity dim %d" n)
              (Cmat.identity n) m)
          dims);
    case "add_into / sub_into match add / sub" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let a = rand_mat st n n and b = rand_mat st n n in
            let dst = Cmat.create n n in
            Cmat.add_into ~dst a b;
            check_bits_mat
              (Printf.sprintf "add dim %d" n)
              (Cmat.add a b) dst;
            Cmat.sub_into ~dst a b;
            check_bits_mat
              (Printf.sprintf "sub dim %d" n)
              (Cmat.sub a b) dst)
          dims);
    case "scale_into / scale_re_into match scale / scale_re" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let m = rand_mat st n n in
            let z = scalar st and s = entry st in
            let dst = Cmat.create n n in
            Cmat.scale_into ~dst z m;
            check_bits_mat
              (Printf.sprintf "scale dim %d" n)
              (Cmat.scale z m) dst;
            Cmat.scale_re_into ~dst s m;
            check_bits_mat
              (Printf.sprintf "scale_re dim %d" n)
              (Cmat.scale_re s m) dst)
          dims);
    case "axpy_re_into rounds like add-of-scale" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let acc = rand_mat st n n and m = rand_mat st n n in
            let s = entry st in
            let expected = Cmat.add acc (Cmat.scale_re s m) in
            Cmat.axpy_re_into ~dst:acc s m;
            check_bits_mat (Printf.sprintf "axpy dim %d" n) expected acc)
          dims);
    case "element-wise kernels accept full aliasing" (fun () ->
        let st = state () in
        let n = 4 in
        let a0 = rand_mat st n n and b0 = rand_mat st n n in
        (* dst == a *)
        let a = Cmat.copy a0 in
        Cmat.add_into ~dst:a a b0;
        check_bits_mat "add dst==a" (Cmat.add a0 b0) a;
        (* dst == b *)
        let b = Cmat.copy b0 in
        Cmat.sub_into ~dst:b a0 b;
        check_bits_mat "sub dst==b" (Cmat.sub a0 b0) b;
        (* dst == a == b *)
        let m = Cmat.copy a0 in
        Cmat.add_into ~dst:m m m;
        check_bits_mat "add dst==a==b" (Cmat.add a0 a0) m;
        (* in-place scaling *)
        let z = scalar st in
        let m = Cmat.copy a0 in
        Cmat.scale_into ~dst:m z m;
        check_bits_mat "scale in place" (Cmat.scale z a0) m;
        let s = entry st in
        let m = Cmat.copy a0 in
        Cmat.scale_re_into ~dst:m s m;
        check_bits_mat "scale_re in place" (Cmat.scale_re s a0) m;
        (* axpy onto itself: dst <- dst + s*dst *)
        let m = Cmat.copy a0 in
        Cmat.axpy_re_into ~dst:m s m;
        check_bits_mat "axpy dst==m" (Cmat.add a0 (Cmat.scale_re s a0)) m;
        (* blit onto itself is the identity *)
        let m = Cmat.copy a0 in
        Cmat.blit ~src:m ~dst:m;
        check_bits_mat "blit src==dst" a0 m)
  ]

(* ------------------------------------------------------------------ *)
(* Product / adjoint / solve kernels                                    *)
(* ------------------------------------------------------------------ *)

let product_suite =
  [ case "mul_into matches mul (square, dims 1-8)" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let a = rand_mat st n n and b = rand_mat st n n in
            let dst = rand_mat st n n (* stale contents must not leak *) in
            Cmat.mul_into ~dst a b;
            check_bits_mat
              (Printf.sprintf "mul dim %d" n)
              (Cmat.mul a b) dst)
          dims);
    case "mul_into matches mul on rectangular shapes" (fun () ->
        let st = state () in
        List.iter
          (fun (m, k, n) ->
            let a = rand_mat st m k and b = rand_mat st k n in
            let dst = Cmat.create m n in
            Cmat.mul_into ~dst a b;
            check_bits_mat
              (Printf.sprintf "mul %dx%d * %dx%d" m k k n)
              (Cmat.mul a b) dst)
          [ (1, 3, 2); (4, 2, 5); (3, 8, 1); (2, 1, 2) ]);
    case "mul_adjoint_left_into matches mul_adjoint_left" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let a = rand_mat st n n and b = rand_mat st n n in
            let dst = rand_mat st n n in
            Cmat.mul_adjoint_left_into ~dst a b;
            check_bits_mat
              (Printf.sprintf "mul_adjoint_left dim %d" n)
              (Cmat.mul_adjoint_left a b) dst)
          dims);
    case "adjoint_into matches adjoint" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let m = rand_mat st n (9 - n) in
            let dst = Cmat.create (9 - n) n in
            Cmat.adjoint_into ~dst m;
            check_bits_mat
              (Printf.sprintf "adjoint %dx%d" n (9 - n))
              (Cmat.adjoint m) dst)
          dims);
    case "trace_prod_into matches the boxed-accessor formulation" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let a = rand_mat st n n and b = rand_mat st n n in
            (* reference: identical loop and accumulation order, but
               through the public cell accessors — exactly what GRAPE's
               gradient loop computed before the kernel moved here *)
            let acc_re = ref 0.0 and acc_im = ref 0.0 in
            for r = 0 to n - 1 do
              for c = 0 to n - 1 do
                let xr = Cmat.get_re a r c and xi = Cmat.get_im a r c in
                let yr = Cmat.get_re b c r and yi = Cmat.get_im b c r in
                acc_re := !acc_re +. (xr *. yr) -. (xi *. yi);
                acc_im := !acc_im +. (xr *. yi) +. (xi *. yr)
              done
            done;
            let acc = [| nan; nan |] in
            Cmat.trace_prod_into acc a b;
            check_bits_float
              (Printf.sprintf "trace_prod re dim %d" n)
              !acc_re acc.(0);
            check_bits_float
              (Printf.sprintf "trace_prod im dim %d" n)
              !acc_im acc.(1);
            (* and it agrees with trace (mul a b) to rounding *)
            let tr = Cmat.trace (Cmat.mul a b) in
            check_float ~eps:1e-12
              (Printf.sprintf "trace_prod vs trace-of-mul dim %d" n)
              (Cx.re tr) acc.(0))
          dims);
    case "solve_into matches solve, including dst == b" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            (* diagonally-dominated system so it is never near-singular *)
            let a = rand_mat st n n in
            for i = 0 to n - 1 do
              Cmat.set_re_im a i i (Cmat.get_re a i i +. 4.0)
                (Cmat.get_im a i i)
            done;
            let b = rand_mat st n 2 in
            let expected = Cmat.solve a b in
            let scratch = Cmat.create n n in
            let dst = Cmat.create n 2 in
            Cmat.solve_into ~scratch a b ~dst;
            check_bits_mat (Printf.sprintf "solve dim %d" n) expected dst;
            (* dst aliasing b is the documented in-place form *)
            let b' = Cmat.copy b in
            Cmat.solve_into ~scratch a b' ~dst:b';
            check_bits_mat
              (Printf.sprintf "solve in-place dim %d" n)
              expected b')
          dims);
    case "solve_into leaves a untouched and reports singularity" (fun () ->
        let st = state () in
        let n = 3 in
        let a = rand_mat st n n in
        for i = 0 to n - 1 do
          Cmat.set_re_im a i i (Cmat.get_re a i i +. 4.0) (Cmat.get_im a i i)
        done;
        let a_before = Cmat.copy a in
        let scratch = Cmat.create n n and dst = Cmat.create n 1 in
        Cmat.solve_into ~scratch a (rand_mat st n 1) ~dst;
        check_bits_mat "a preserved" a_before a;
        let singular = Cmat.create n n in
        check_true "singular raises Failure"
          (try
             Cmat.solve_into ~scratch singular (rand_mat st n 1) ~dst;
             false
           with Failure _ -> true))
  ]

(* ------------------------------------------------------------------ *)
(* Exponential and Hamiltonian-assembly kernels                         *)
(* ------------------------------------------------------------------ *)

let expm_suite =
  [ case "expm_into matches expm bit-for-bit (dims 1-8)" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let m = Cmat.scale_re 0.7 (rand_mat st n n) in
            let ws = Expm.Workspace.create n in
            check_int "workspace dim" n (Expm.Workspace.dim ws);
            let dst = rand_mat st n n in
            Expm.expm_into ws m ~dst;
            check_bits_mat (Printf.sprintf "expm dim %d" n) (Expm.expm m)
              dst)
          dims);
    case "expm_i_h_into matches expm_i_h on Hermitian input" (fun () ->
        let st = state () in
        List.iter
          (fun n ->
            let h = rand_herm st n in
            let h_before = Cmat.copy h in
            let ws = Expm.Workspace.create n in
            let dst = Cmat.create n n in
            Expm.expm_i_h_into ws ~dt:2.0 h ~dst;
            check_bits_mat
              (Printf.sprintf "expm_i_h dim %d" n)
              (Expm.expm_i_h ~dt:2.0 h) dst;
            check_true
              (Printf.sprintf "propagator unitary dim %d" n)
              (Cmat.is_unitary dst);
            (* h is an input, not scratch: it must survive the call *)
            check_bits_mat "h preserved" h_before h)
          [ 2; 4; 8 ]);
    case "workspace reuse across calls stays bit-identical" (fun () ->
        let st = state () in
        let n = 4 in
        let ws = Expm.Workspace.create n in
        let dst = Cmat.create n n in
        List.iter
          (fun _ ->
            let m = Cmat.scale_re 0.5 (rand_mat st n n) in
            Expm.expm_into ws m ~dst;
            check_bits_mat "reused workspace" (Expm.expm m) dst)
          [ 1; 2; 3; 4; 5 ]);
    case "Hamiltonian.at_into matches at" (fun () ->
        let st = state () in
        List.iter
          (fun (nq, pairs) ->
            let h = Hamiltonian.make ~n_qubits:nq ~coupled_pairs:pairs () in
            let nc = Hamiltonian.n_controls h in
            (* include exact zeros: [at_into] must take the same
               skip-zero-amplitude path as [at] *)
            let amps = Array.init nc (fun _ -> entry st) in
            let dst = rand_mat st h.Hamiltonian.dim h.Hamiltonian.dim in
            Hamiltonian.at_into h amps ~dst;
            check_bits_mat
              (Printf.sprintf "at %dq" nq)
              (Hamiltonian.at h amps) dst)
          [ (1, []); (2, [ (0, 1) ]); (3, [ (0, 1); (1, 2) ]) ])
  ]

(* ------------------------------------------------------------------ *)
(* Contract violations                                                  *)
(* ------------------------------------------------------------------ *)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let contract_suite =
  [ case "dimension mismatches raise Invalid_argument" (fun () ->
        let a2 = Cmat.create 2 2
        and a3 = Cmat.create 3 3
        and r23 = Cmat.create 2 3 in
        check_true "blit"
          (raises_invalid (fun () -> Cmat.blit ~src:a2 ~dst:a3));
        check_true "add_into"
          (raises_invalid (fun () -> Cmat.add_into ~dst:a2 a2 a3));
        check_true "sub_into"
          (raises_invalid (fun () -> Cmat.sub_into ~dst:a3 a2 a2));
        check_true "scale_into"
          (raises_invalid (fun () -> Cmat.scale_into ~dst:a3 Cx.one a2));
        check_true "scale_re_into"
          (raises_invalid (fun () -> Cmat.scale_re_into ~dst:r23 2.0 a2));
        check_true "axpy_re_into"
          (raises_invalid (fun () -> Cmat.axpy_re_into ~dst:a2 2.0 a3));
        check_true "mul_into inner dim"
          (raises_invalid (fun () -> Cmat.mul_into ~dst:a2 r23 a2));
        check_true "mul_into dst shape"
          (raises_invalid (fun () -> Cmat.mul_into ~dst:r23 a2 a2));
        check_true "mul_adjoint_left_into"
          (raises_invalid (fun () ->
               Cmat.mul_adjoint_left_into ~dst:a2 a3 a3));
        check_true "adjoint_into"
          (raises_invalid (fun () -> Cmat.adjoint_into ~dst:a2 r23));
        check_true "set_identity non-square"
          (raises_invalid (fun () -> Cmat.set_identity r23));
        check_true "trace_prod_into non-square"
          (raises_invalid (fun () ->
               Cmat.trace_prod_into [| 0.0; 0.0 |] r23 r23));
        check_true "trace_prod_into size mismatch"
          (raises_invalid (fun () ->
               Cmat.trace_prod_into [| 0.0; 0.0 |] a2 a3));
        check_true "trace_prod_into short accumulator"
          (raises_invalid (fun () -> Cmat.trace_prod_into [| 0.0 |] a2 a2));
        check_true "solve_into non-square"
          (raises_invalid (fun () ->
               Cmat.solve_into ~scratch:a2 r23 a2 ~dst:a2)));
    case "write-after-read kernels reject aliasing" (fun () ->
        let a = Cmat.identity 3 and b = Cmat.identity 3 in
        let scratch = Cmat.create 3 3 in
        check_true "mul_into dst==a"
          (raises_invalid (fun () -> Cmat.mul_into ~dst:a a b));
        check_true "mul_into dst==b"
          (raises_invalid (fun () -> Cmat.mul_into ~dst:b a b));
        check_true "mul_adjoint_left_into dst==b"
          (raises_invalid (fun () -> Cmat.mul_adjoint_left_into ~dst:b a b));
        check_true "adjoint_into dst==m"
          (raises_invalid (fun () -> Cmat.adjoint_into ~dst:a a));
        check_true "solve_into scratch==a"
          (raises_invalid (fun () -> Cmat.solve_into ~scratch:a a b ~dst:b));
        check_true "solve_into dst==a"
          (raises_invalid (fun () ->
               Cmat.solve_into ~scratch a b ~dst:a)));
    case "0x0 matrices are not falsely flagged as aliased" (fun () ->
        (* every zero-length OCaml array is the same atom, so a naive
           physical-equality alias check would reject any two empty
           matrices; the kernels must special-case it *)
        let a = Cmat.create 0 0 and b = Cmat.create 0 0 in
        let dst = Cmat.create 0 0 in
        Cmat.mul_into ~dst a b;
        Cmat.adjoint_into ~dst a;
        check_int "still 0x0" 0 (Cmat.rows dst));
    case "expm workspace rejects mismatched shapes" (fun () ->
        let ws = Expm.Workspace.create 3 in
        let m2 = Cmat.create 2 2 and m3 = Cmat.create 3 3 in
        check_true "src too small"
          (raises_invalid (fun () -> Expm.expm_into ws m2 ~dst:m3));
        check_true "dst too small"
          (raises_invalid (fun () -> Expm.expm_into ws m3 ~dst:m2));
        check_true "expm_i_h_into h mismatch"
          (raises_invalid (fun () ->
               Expm.expm_i_h_into ws ~dt:1.0 m2 ~dst:m3)))
  ]

(* ------------------------------------------------------------------ *)
(* GRAPE: allocation budget and workspace evaluation                    *)
(* ------------------------------------------------------------------ *)

(* Fixed per-evaluate minor-heap budget, in words. A warmed-up
   [evaluate] performs no matrix allocation; what remains is small
   boxing noise (the result tuple, a handful of cross-module float
   returns). Measured ~750 (1q) / ~950 (2q) / ~1400 (3q) words per
   call; the budget pins the order of magnitude so a reintroduced
   per-slice allocation (one dim x dim matrix is already ~130 words at
   dim 8, times 20 slices) trips it immediately. *)
let alloc_budget_words = 4096.0

let grape_problem nq pairs =
  let h = Hamiltonian.make ~n_qubits:nq ~coupled_pairs:pairs () in
  let nc = Hamiltonian.n_controls h in
  let n_slices = 20 in
  let x =
    Array.init n_slices (fun i ->
        Array.init nc (fun k -> 0.01 *. float_of_int ((i + k) mod 7)))
  in
  (h, n_slices, x)

let grape_suite =
  [ case "warmed-up evaluate stays under the minor-heap budget" (fun () ->
        List.iter
          (fun (name, nq, pairs) ->
            let h, n_slices, x = grape_problem nq pairs in
            let ws = Grape.Workspace.create h ~n_slices in
            let cfg = Grape.default_config in
            let target = Cmat.identity h.Hamiltonian.dim in
            for _ = 1 to 3 do
              ignore (Grape.evaluate ~ws cfg h target ~dt:2.0 ~n_slices x)
            done;
            let before = Gc.minor_words () in
            let reps = 20 in
            for _ = 1 to reps do
              ignore (Grape.evaluate ~ws cfg h target ~dt:2.0 ~n_slices x)
            done;
            let per_call =
              (Gc.minor_words () -. before) /. float_of_int reps
            in
            if per_call > alloc_budget_words then
              Alcotest.failf
                "%s: %.0f minor words per evaluate exceeds the %.0f-word \
                 budget — a hot-path allocation crept back in"
                name per_call alloc_budget_words)
          [ ("1q", 1, []); ("2q", 2, [ (0, 1) ]); ("3q", 3, [ (0, 1); (1, 2) ]) ]);
    case "workspace evaluate is bit-identical to the one-shot form"
      (fun () ->
        let h, n_slices, x = grape_problem 2 [ (0, 1) ] in
        let ws = Grape.Workspace.create h ~n_slices in
        let cfg = Grape.default_config in
        let target =
          Paqoc_circuit.Gate.unitary Paqoc_circuit.Gate.CX
        in
        let o1, f1 = Grape.evaluate ~ws cfg h target ~dt:2.0 ~n_slices x in
        let o2, f2 = Grape.evaluate cfg h target ~dt:2.0 ~n_slices x in
        check_bits_float "objective" o1 o2;
        check_bits_float "fidelity" f1 f2;
        (* and re-running on the same workspace does not drift *)
        let o3, f3 = Grape.evaluate ~ws cfg h target ~dt:2.0 ~n_slices x in
        check_bits_float "objective (reused ws)" o1 o3;
        check_bits_float "fidelity (reused ws)" f1 f3);
    case "evaluate rejects mismatched workspace and inputs" (fun () ->
        let h, n_slices, x = grape_problem 2 [ (0, 1) ] in
        let cfg = Grape.default_config in
        let target = Cmat.identity h.Hamiltonian.dim in
        let ws_wrong = Grape.Workspace.create h ~n_slices:(n_slices + 1) in
        check_true "slice-count mismatch"
          (raises_invalid (fun () ->
               ignore
                 (Grape.evaluate ~ws:ws_wrong cfg h target ~dt:2.0 ~n_slices
                    x)));
        check_true "target dim mismatch"
          (raises_invalid (fun () ->
               ignore
                 (Grape.evaluate cfg h (Cmat.identity 2) ~dt:2.0 ~n_slices x))))
  ]

(* ------------------------------------------------------------------ *)
(* L-BFGS curvature history: bounded deque                              *)
(* ------------------------------------------------------------------ *)

let history_suite =
  [ case "length is hard-capped at the window" (fun () ->
        let hist = Grape.History.create ~window:5 ~dim:3 in
        check_int "window" 5 (Grape.History.window hist);
        check_int "empty" 0 (Grape.History.length hist);
        for i = 1 to 40 do
          let v = Array.make 3 (float_of_int i) in
          Grape.History.push hist ~s:v ~y:v;
          check_int
            (Printf.sprintf "length after %d pushes" i)
            (min i 5) (Grape.History.length hist)
        done);
    case "newest-first order and oldest eviction" (fun () ->
        let hist = Grape.History.create ~window:3 ~dim:1 in
        List.iter
          (fun v ->
            Grape.History.push hist ~s:[| v |] ~y:[| -.v |])
          [ 1.0; 2.0; 3.0; 4.0 ];
        (* pushed 1,2,3,4 through a window of 3: 1 evicted, 4 newest *)
        check_float "s 0" 4.0 (Grape.History.s hist 0).(0);
        check_float "s 1" 3.0 (Grape.History.s hist 1).(0);
        check_float "s 2" 2.0 (Grape.History.s hist 2).(0);
        check_float "y 0" (-4.0) (Grape.History.y hist 0).(0);
        check_float "y 2" (-2.0) (Grape.History.y hist 2).(0));
    case "push copies its arguments" (fun () ->
        let hist = Grape.History.create ~window:2 ~dim:2 in
        let s = [| 1.0; 2.0 |] and y = [| 3.0; 4.0 |] in
        Grape.History.push hist ~s ~y;
        s.(0) <- 99.0;
        y.(1) <- 99.0;
        check_float "s unchanged" 1.0 (Grape.History.s hist 0).(0);
        check_float "y unchanged" 4.0 (Grape.History.y hist 0).(1));
    case "bad construction and out-of-range access raise" (fun () ->
        check_true "window 0"
          (raises_invalid (fun () ->
               ignore (Grape.History.create ~window:0 ~dim:2)));
        check_true "negative dim"
          (raises_invalid (fun () ->
               ignore (Grape.History.create ~window:2 ~dim:(-1))));
        let hist = Grape.History.create ~window:2 ~dim:1 in
        Grape.History.push hist ~s:[| 1.0 |] ~y:[| 1.0 |];
        check_true "index past length"
          (raises_invalid (fun () -> ignore (Grape.History.s hist 1)));
        check_true "negative index"
          (raises_invalid (fun () -> ignore (Grape.History.y hist (-1))));
        check_true "wrong vector length"
          (raises_invalid (fun () ->
               Grape.History.push hist ~s:[| 1.0; 2.0 |] ~y:[| 1.0 |])));
    slow_case "L-BFGS optimization exercises the deque end to end"
      (fun () ->
        (* a real optimization with a tiny window: convergence with the
           bounded history confirms the two-loop recursion only ever sees
           in-window pairs (an out-of-range borrow would raise) *)
        let h = Hamiltonian.make ~n_qubits:1 ~coupled_pairs:[] () in
        let config =
          { Grape.default_config with
            optimizer = Grape.Lbfgs 3;
            max_iters = 150;
            target_fidelity = 0.999
          }
        in
        let r =
          Grape.optimize ~config h
            ~target:(Paqoc_circuit.Gate.unitary Paqoc_circuit.Gate.X)
            ~n_slices:20 ~dt:2.0 ()
        in
        (* deterministic plateau at 0.9205 for this seed; the point is
           that 150 accepted steps cycled the window-3 deque ~50 times
           without an out-of-range borrow, while still making progress *)
        check_true "reaches the plateau" (r.Grape.fidelity > 0.9))
  ]

let suite =
  elementwise_suite @ product_suite @ expm_suite @ contract_suite
  @ grape_suite @ history_suite
