(* Refresh the golden files (make update-golden). Each file renders
   through the same code path its regression test compares with, so the
   files cannot diverge from what the tests compute:
     - the 17-benchmark latency table (Latency_table.render/compute)
     - the GRAPE bit-determinism reference (Grape.reference_golden)
     - the canonical hit-rate table (Canon_table.render/compute)
     - the 32-point variational sweep table (Sweep_table.render/compute)
     - the qaoa pulse-IR export (Pulse_ir.reference_golden/to_string) *)

let write path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let () =
  let latency_path, grape_path, canon_path, sweep_path, ir_path =
    match Sys.argv with
    | [| _; latency |] -> (Some latency, None, None, None, None)
    | [| _; latency; grape |] -> (Some latency, Some grape, None, None, None)
    | [| _; latency; grape; canon |] ->
      (Some latency, Some grape, Some canon, None, None)
    | [| _; latency; grape; canon; sweep |] ->
      (Some latency, Some grape, Some canon, Some sweep, None)
    | [| _; latency; grape; canon; sweep; ir |] ->
      (Some latency, Some grape, Some canon, Some sweep, Some ir)
    | _ ->
      prerr_endline
        "usage: update_golden LATENCY_FILE [GRAPE_FILE] [CANON_FILE] \
         [SWEEP_FILE] [IR_FILE]";
      exit 2
  in
  Option.iter
    (fun path ->
      let table =
        Paqoc_benchmarks.Latency_table.(render (compute ~jobs:2 ()))
      in
      write path table;
      Printf.printf "wrote %s (%d benchmarks)\n" path
        (List.length (String.split_on_char '\n' table) - 4))
    latency_path;
  Option.iter
    (fun path ->
      let golden = Paqoc_pulse.Grape.reference_golden () in
      write path golden;
      Printf.printf "wrote %s (%d lines)\n" path
        (List.length (String.split_on_char '\n' golden) - 1))
    grape_path;
  Option.iter
    (fun path ->
      let table =
        Paqoc_benchmarks.Canon_table.(render (compute ()))
      in
      write path table;
      Printf.printf "wrote %s (%d benchmarks)\n" path
        (List.length (String.split_on_char '\n' table) - 5))
    canon_path;
  Option.iter
    (fun path ->
      let table =
        Paqoc_benchmarks.Sweep_table.(render (compute ()))
      in
      write path table;
      Printf.printf "wrote %s (%d iterations)\n" path
        (List.length (String.split_on_char '\n' table) - 4))
    sweep_path;
  Option.iter
    (fun path ->
      let ir = Paqoc_service.Pulse_ir.reference_golden () in
      write path (Paqoc_service.Pulse_ir.to_string ir);
      Printf.printf "wrote %s (%d instructions)\n" path
        (List.length ir.Paqoc_service.Pulse_ir.schedule))
    ir_path
