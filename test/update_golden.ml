(* Refresh the golden latency table (make update-golden). Renders through
   the same Latency_table code path the regression test compares with, so
   the file cannot diverge from what the test computes. *)
let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: update_golden GOLDEN_FILE";
      exit 2
  in
  let table =
    Paqoc_benchmarks.Latency_table.(render (compute ~jobs:2 ()))
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc table;
  close_out oc;
  Sys.rename tmp path;
  Printf.printf "wrote %s (%d benchmarks)\n" path
    (List.length (String.split_on_char '\n' table) - 4)
