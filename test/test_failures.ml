(* Failure injection: every layer must fail loudly and informatively when
   driven outside its envelope, never silently produce wrong schedules. *)
open Test_util
module DS = Paqoc_pulse.Duration_search
module H = Paqoc_pulse.Hamiltonian
module Gen = Paqoc_pulse.Generator
module Coupling = Paqoc_topology.Coupling
module Sabre = Paqoc_topology.Sabre
module Miner = Paqoc_mining.Miner
module V = Paqoc.Variational

(* shared by the unbound-parameter cases and the qcheck property: a
   4-parameter plan is enough for every subset shape, and the model
   backend freezes it in milliseconds. Lazy so the binary's load time
   stays free of compile work. *)
let unbound_fixture =
  lazy
    (let prepared =
       V.prepare (Paqoc_benchmarks.Dnn.circuit ~symbolic:true ~n:4 ~blocks:1 ())
     in
     let gen = Gen.model_default () in
     let plan = V.freeze ~anchors:2 prepared gen in
     (prepared, plan, gen, List.sort compare (V.plan_params plan)))

let suite =
  [ case "duration search reports unreachable targets" (fun () ->
        (* a CX cannot be realised in 4 dt at fidelity 0.999; the typed
           error must carry what was searched, how far and how close *)
        let h = H.make ~n_qubits:2 ~coupled_pairs:[ (0, 1) ] () in
        let config = { DS.default_config with max_duration = 4.0 } in
        check_true "raises Search_failed"
          (try
             ignore
               (DS.minimal_duration ~config ~gate:"cx" h
                  ~target:(Gate.unitary Gate.CX) ~lower_bound:2.0 ());
             false
           with DS.Search_failed e ->
             check_true "status is unreachable" (e.DS.status = DS.Unreachable);
             check_true "carries the gate name" (String.equal e.DS.gate "cx");
             check_int "carries the qubit count" 2 e.DS.n_qubits;
             check_true "max duration tried is within the bound"
               (e.DS.max_duration_tried > 0.0
               && e.DS.max_duration_tried <= config.DS.max_duration);
             check_true "counted its probes" (e.DS.failed_probes > 0);
             check_true "best fidelity below target"
               (e.DS.best_fidelity >= 0.0 && e.DS.best_fidelity < 1.0);
             let msg = DS.error_to_string e in
             let contains hay needle =
               let lh = String.length hay and ln = String.length needle in
               let rec go i =
                 i + ln <= lh
                 && (String.equal (String.sub hay i ln) needle || go (i + 1))
               in
               go 0
             in
             check_true "rendered error names the gate" (contains msg "cx");
             true));
    case "duration search surfaces a non-raising result" (fun () ->
        let h = H.make ~n_qubits:2 ~coupled_pairs:[ (0, 1) ] () in
        let config = { DS.default_config with max_duration = 4.0 } in
        (match
           DS.search ~config h ~target:(Gate.unitary Gate.CX) ~lower_bound:2.0
             ()
         with
        | Ok _ -> check_true "should not converge in 4 dt" false
        | Error e -> check_true "typed status" (e.DS.status = DS.Unreachable)));
    case "duration search iteration budget exhausts typed" (fun () ->
        (* a budget of 1 total GRAPE iteration cannot converge anything *)
        let h = H.make ~n_qubits:2 ~coupled_pairs:[ (0, 1) ] () in
        let config = { DS.default_config with max_total_iters = 1 } in
        match
          DS.search ~config ~gate:"cx" h ~target:(Gate.unitary Gate.CX)
            ~lower_bound:80.0 ()
        with
        | Ok _ -> check_true "should not converge on 1 iteration" false
        | Error e ->
          check_true "budget-exhausted" (e.DS.status = DS.Budget_exhausted);
          check_true "named" (String.equal (DS.status_name e.DS.status)
                                "budget-exhausted"));
    case "QOC backend rejects symbolic groups" (fun () ->
        let gen = Gen.qoc_default () in
        let group, _ =
          Gen.group_of_apps [ Gate.app1 (Gate.RZ (Angle.sym "g")) 0 ]
        in
        check_true "raises"
          (try ignore (Gen.generate gen group); false with Failure _ -> true));
    case "routing on a disconnected device fails loudly" (fun () ->
        (* two components: {0,1} and {2,3}; a CX across them is
           unroutable *)
        let device = Coupling.of_edges ~n:4 [ (0, 1); (2, 3) ] in
        let c = Circuit.make ~n_qubits:4 [ Gate.app2 Gate.CX 0 2 ] in
        check_true "raises"
          (try ignore (Sabre.route c device); false with Failure _ -> true));
    case "grape rejects dimension mismatches" (fun () ->
        let h = H.make ~n_qubits:1 ~coupled_pairs:[] () in
        check_true "raises"
          (try
             ignore
               (Paqoc_pulse.Grape.optimize h ~target:(Gate.unitary Gate.CX)
                  ~n_slices:10 ~dt:2.0 ());
             false
           with Invalid_argument _ -> true));
    case "miner configs are validated by construction" (fun () ->
        (* a min_support below 1 finds everything exactly once — must not
           loop or crash *)
        let c = Circuit.make ~n_qubits:2 [ Gate.app2 Gate.CX 0 1 ] in
        let found =
          Miner.mine ~config:{ Miner.default_config with min_support = 1 } c
        in
        check_true "terminates" (List.length found >= 0));
    case "empty-ish circuits flow through the whole pipeline" (fun () ->
        (* a circuit of only virtual RZs: zero-latency schedule, ESP 1 *)
        let c =
          Circuit.make ~n_qubits:2
            [ Gate.app1 (Gate.RZ (Angle.const 0.3)) 0;
              Gate.app1 (Gate.RZ (Angle.const 0.7)) 1 ]
        in
        let gen = Gen.model_default () in
        let r = Paqoc.compile gen c in
        check_float "zero latency" 0.0 r.Paqoc.latency;
        check_float "perfect esp" 1.0 r.Paqoc.esp);
    case "single-gate circuit compiles" (fun () ->
        let c = Circuit.make ~n_qubits:2 [ Gate.app2 Gate.CX 0 1 ] in
        let gen = Gen.model_default () in
        let r = Paqoc.compile gen c in
        check_int "one episode" 1 r.Paqoc.n_groups;
        check_true "equivalent" (Circuit.equivalent c (Circuit.flatten r.Paqoc.grouped)));
    case "pulse database rejects malformed files" (fun () ->
        (* every corruption class must raise Failure, never load junk *)
        let attempt content =
          let path = Filename.temp_file "paqoc_db" ".txt" in
          let oc = open_out path in
          output_string oc content;
          close_out oc;
          let t = Gen.model_default () in
          let raised =
            try
              Gen.load_database t path;
              false
            with Failure _ -> true
          in
          Sys.remove path;
          raised
        in
        let header = "paqoc-pulse-db v1\n" in
        check_true "empty file" (attempt "");
        check_true "wrong header" (attempt "paqoc-pulse-db v9\nK 1 2 3 k\n");
        check_true "K line missing fields" (attempt (header ^ "K 1.0 2.0\n"));
        check_true "K line with bad float"
          (attempt (header ^ "K 1.0 nope 3.0 2;cx@0,1\n"));
        check_true "unrecognised record"
          (attempt (header ^ "X something\n"));
        (* a well-formed file still loads after all those rejections *)
        check_true "control: valid file loads"
          (not (attempt (header ^ "K 96 0.001 0.999 2;cx@0,1\nS 2;cx@0,1\n"))));
    case "pulse DB save fails loudly on an unwritable path" (fun () ->
        let gen = Gen.model_default () in
        check_true "raises Failure"
          (try
             Gen.save_database gen "/nonexistent_paqoc_dir/pulse.db";
             false
           with Failure msg -> String.length msg > 0));
    case "a failing save never corrupts an existing database" (fun () ->
        (* force the write to fail after the target exists: the atomic
           save goes through <path>.tmp, so planting a directory there
           makes open_out fail while <path> must stay intact *)
        let path = Filename.temp_file "paqoc_db" ".txt" in
        let tmp = path ^ ".tmp" in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists tmp then Sys.rmdir tmp;
            Sys.remove path)
          (fun () ->
            let gen = Gen.model_default () in
            ignore
              (Gen.generate gen
                 (fst (Gen.group_of_apps [ Gate.app2 Gate.CX 0 1 ])));
            Gen.save_database gen path;
            let read () =
              let ic = open_in_bin path in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            in
            let before = read () in
            Sys.mkdir tmp 0o755;
            check_true "raises Failure"
              (try
                 Gen.save_database gen path;
                 false
               with Failure _ -> true);
            check_true "existing database untouched"
              (String.equal before (read ()))));
    case "successful save leaves no temporary file" (fun () ->
        let path = Filename.temp_file "paqoc_db" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let gen = Gen.model_default () in
            Gen.save_database gen path;
            check_true "no .tmp left" (not (Sys.file_exists (path ^ ".tmp")));
            let gen2 = Gen.model_default () in
            Gen.load_database gen2 path;
            check_int "round-trips" (Gen.database_size gen)
              (Gen.database_size gen2)));
    case "metrics dumps fail loudly on an unwritable path" (fun () ->
        let module Obs = Paqoc_obs.Obs in
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.enable ();
            Obs.count "c";
            check_true "report raises Failure"
              (try
                 Obs.write_report "/nonexistent_paqoc_dir/metrics.json";
                 false
               with Failure _ -> true);
            check_true "trace raises Failure"
              (try
                 Obs.write_trace "/nonexistent_paqoc_dir/trace.json";
                 false
               with Failure _ -> true)));
    case "merger max_iterations bound is honoured" (fun () ->
        let c =
          Circuit.make ~n_qubits:3
            [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 1 2; Gate.app2 Gate.CX 0 1 ]
        in
        let gen = Gen.model_default () in
        let _, stats =
          Paqoc.Merger.run
            ~config:{ Paqoc.Merger.default_config with max_iterations = 1 }
            gen c
        in
        check_true "stopped at the bound" (stats.Paqoc.Merger.iterations <= 1));
    (* ---- the variational fast path's typed binding errors ---- *)
    case "unbound parameters raise the sorted typed error" (fun () ->
        let prepared, plan, gen, sorted = Lazy.force unbound_fixture in
        check_true "the fixture has several parameters"
          (List.length sorted >= 3);
        let expect_missing missing f =
          try
            ignore (f ());
            check_true "raised Unbound_parameters" false
          with V.Unbound_parameters m ->
            check_true
              (Printf.sprintf "missing = [%s]" (String.concat "; " m))
              (m = missing)
        in
        (* empty bindings: every entry point reports everything, sorted *)
        expect_missing sorted (fun () -> V.compile prepared gen []);
        expect_missing sorted (fun () -> V.recompile plan gen ~angles:[]);
        expect_missing sorted (fun () ->
            V.recompile_full plan gen ~angles:[]);
        (* a partial binding names exactly what was dropped *)
        (match sorted with
        | keep :: rest ->
          expect_missing rest (fun () ->
              V.recompile plan gen ~angles:[ (keep, 1.0) ])
        | [] -> ());
        (* unknown names are not bindings; they never mask a missing one *)
        expect_missing sorted (fun () ->
            V.recompile plan gen ~angles:[ ("nonexistent", 0.5) ]));
    qcheck
      (QCheck.Test.make ~count:40
         ~name:"any partial binding reports exactly the sorted unbound subset"
         (QCheck.int_bound 15)
         (fun mask ->
           let _, plan, gen, sorted = Lazy.force unbound_fixture in
           let keep =
             List.filteri (fun i _ -> mask land (1 lsl i) <> 0) sorted
           in
           let omitted =
             List.filter (fun p -> not (List.mem p keep)) sorted
           in
           let angles = List.map (fun p -> (p, 1.0)) keep in
           if omitted = [] then (
             (* the complete binding must not raise at all *)
             ignore (V.recompile plan gen ~angles);
             true)
           else
             try
               ignore (V.recompile plan gen ~angles);
               false
             with V.Unbound_parameters m -> m = omitted))
  ]
