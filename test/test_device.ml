(* The device registry, calibration drift and the pulse-IR exporter:
   hash stability, cross-device cache isolation, drift-forced
   recalibration, the explicit eviction policy, per-device compile
   determinism across --jobs, the pinned IR golden, and the reader's
   typed rejection of malformed documents. *)
open Test_util
module Device = Paqoc_topology.Device
module Drift = Paqoc_topology.Drift
module Cache = Paqoc_pulse.Cache
module Db = Paqoc_pulse.Db_format
module Protocol = Paqoc_pulse.Protocol
module Service = Paqoc_service.Service
module Pulse_ir = Paqoc_service.Pulse_ir
module Obs = Paqoc_obs.Obs

(* under `dune runtest` the cwd is the test directory (the dep glob puts
   the file at golden/...); when the binary is run by hand from the repo
   root the file lives under test/ *)
let ir_golden_path =
  if Sys.file_exists "golden/ir_qaoa.json" then "golden/ir_qaoa.json"
  else "test/golden/ir_qaoa.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* replace the first occurrence of [needle] in [hay] — for minting
   malformed IR documents out of the well-formed golden *)
let replace_first ~needle ~by hay =
  let nh = String.length needle and lh = String.length hay in
  let rec find i =
    if i + nh > lh then None
    else if String.sub hay i nh = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "mutation needle %S not found" needle
  | Some i ->
    String.sub hay 0 i ^ by
    ^ String.sub hay (i + nh) (lh - i - nh)

let entry lat =
  { Cache.latency = lat;
    error = 0.001;
    fidelity = 0.999;
    provenance = Db.Synthesized
  }

let compile_req ?(jobs = 1) ?device ?(drift_seed = 0) ?(drift_epoch = 0) name
    =
  { Protocol.default_compile with
    Protocol.circuit = Protocol.Benchmark name;
    jobs;
    device;
    drift_seed;
    drift_epoch
  }

let suite =
  [ case "registry: names resolve, order is pinned, hashes are distinct"
      (fun () ->
        let names = List.map Device.name Device.all in
        check_true "registry order"
          (names = [ "lattice"; "heavy-hex"; "square"; "ring" ]);
        List.iter
          (fun d ->
            match Device.find (Device.name d) with
            | Some d' ->
              check_true
                ("find returns the registered " ^ Device.name d)
                (Device.hash d = Device.hash d')
            | None -> Alcotest.failf "find %s failed" (Device.name d))
          Device.all;
        check_true "unknown name misses" (Device.find "bogus" = None);
        let hashes = List.map Device.hash Device.all in
        check_int "hashes distinct"
          (List.length hashes)
          (List.length (List.sort_uniq compare hashes));
        List.iter
          (fun h -> check_int "32 hex chars" 32 (String.length h))
          hashes);
    case "lattice is grid 5x5: same hash, empty cache namespace" (fun () ->
        check_true "grid 5x5 hashes like lattice"
          (Device.hash (Device.grid ~rows:5 ~cols:5)
          = Device.hash Device.lattice);
        check_true "lattice namespace is empty (pre-registry byte compat)"
          (Device.cache_namespace Device.lattice = "");
        let g34 = Device.grid ~rows:3 ~cols:4 in
        check_true "non-5x5 grids hash differently and are namespaced"
          (Device.cache_namespace g34 = "dev:" ^ Device.hash g34 ^ "|");
        check_true "other devices are namespaced"
          (Device.cache_namespace Device.ring
          = "dev:" ^ Device.hash Device.ring ^ "|"));
    case "drift: epoch 0 is the identity, epochs are seeded and distinct"
      (fun () ->
        let base = Device.ring in
        check_true "epoch 0 leaves the hash alone"
          (Device.hash (Drift.apply ~seed:7 ~epoch:0 base)
          = Device.hash base);
        let a = Drift.apply ~seed:7 ~epoch:3 base in
        let b = Drift.apply ~seed:7 ~epoch:3 base in
        check_true "same seed+epoch reproduces the hash"
          (Device.hash a = Device.hash b);
        check_true "different epoch drifts differently"
          (Device.hash a
          <> Device.hash (Drift.apply ~seed:7 ~epoch:4 base));
        check_true "different seed drifts differently"
          (Device.hash a
          <> Device.hash (Drift.apply ~seed:8 ~epoch:3 base));
        check_true "drift changes the hash at all"
          (Device.hash a <> Device.hash base);
        check_true "negative epoch is rejected"
          (try
             ignore (Drift.apply ~seed:1 ~epoch:(-1) base);
             false
           with Invalid_argument _ -> true));
    case "cache: device namespaces isolate identical keys" (fun () ->
        let c = Cache.create () in
        let ns_ring = Device.cache_namespace Device.ring in
        let ns_hex = Device.cache_namespace Device.heavy_hex in
        Cache.publish c "k" (entry 10.0);
        Cache.publish c (ns_ring ^ "k") (entry 20.0);
        (match Cache.find c (ns_hex ^ "k") with
        | None -> ()
        | Some _ ->
          Alcotest.fail "heavy-hex lookup answered by another device");
        (match Cache.find c (ns_ring ^ "k") with
        | Some e -> check_float "ring sees its own entry" 20.0 e.Cache.latency
        | None -> Alcotest.fail "ring entry lost");
        match Cache.find c "k" with
        | Some e -> check_float "default entry intact" 10.0 e.Cache.latency
        | None -> Alcotest.fail "default entry lost");
    case "cache: evict_devices drops stale namespaces, counts, keeps default"
      (fun () ->
        Fun.protect ~finally:Obs.reset @@ fun () ->
        Obs.enable ();
        let c = Cache.create () in
        let ns_ring = Device.cache_namespace Device.ring in
        let drifted = Drift.apply ~seed:1 ~epoch:1 Device.ring in
        let ns_stale = Device.cache_namespace drifted in
        Cache.publish c "k" (entry 1.0);
        Cache.publish c (ns_ring ^ "k") (entry 2.0);
        Cache.publish c (ns_stale ^ "k") (entry 3.0);
        Cache.publish c (ns_stale ^ "k2") (entry 4.0);
        let dropped = Cache.evict_devices ~keep:[ Device.hash Device.ring ] c in
        check_int "stale records dropped" 2 dropped;
        check_int "counter agrees" 2 (Obs.counter_value "cache.device_evicted");
        check_true "kept device survives"
          (Cache.probe c (ns_ring ^ "k") <> None);
        check_true "default-lattice records are never evicted"
          (Cache.probe c "k" <> None);
        check_true "stale records gone" (Cache.probe c (ns_stale ^ "k") = None));
    slow_case "compile: every registry device, rows identical at jobs 1 and 4"
      (fun () ->
        List.iter
          (fun d ->
            let name = Device.name d in
            let row jobs =
              Service.suite_row "bv"
                (Service.handle ~cache:(Cache.create ()) ~deadline:None
                   (compile_req ~jobs ~device:name "bv"))
            in
            Alcotest.(check string)
              (name ^ ": suite row byte-identical across jobs")
              (row 1) (row 4))
          Device.all);
    slow_case "compile: drift invalidates a warm cache, pristine epoch rehits"
      (fun () ->
        let cache = Cache.create () in
        let go ?drift_seed ?drift_epoch () =
          Service.handle ~cache ~deadline:None
            (compile_req ~device:"ring" ?drift_seed ?drift_epoch "bv")
        in
        let cold = go () in
        check_true "cold run synthesized" (cold.Protocol.synthesized > 0);
        let warm = go () in
        check_int "warm run misses nothing" 0 warm.Protocol.cache_misses;
        check_int "warm run synthesizes nothing" 0 warm.Protocol.synthesized;
        let drifted = go ~drift_seed:1 ~drift_epoch:1 () in
        check_int "drifted run replays no stale pulses"
          cold.Protocol.cache_misses drifted.Protocol.cache_misses;
        check_int "drifted run resynthesizes everything"
          cold.Protocol.synthesized drifted.Protocol.synthesized;
        let back = go () in
        check_int "rolling back to epoch 0 rehits" 0
          back.Protocol.cache_misses);
    slow_case "pulse IR: qaoa export matches the pinned golden byte-for-byte"
      (fun () ->
        let golden = read_file ir_golden_path in
        let computed = Pulse_ir.to_string (Pulse_ir.reference_golden ()) in
        check_true "bytes identical (make update-golden after an intentional \
                    IR change)"
          (String.equal golden computed));
    slow_case "pulse IR: of_string >> to_string is the identity; verify runs"
      (fun () ->
        let golden = read_file ir_golden_path in
        match Pulse_ir.of_string golden with
        | Error e ->
          Alcotest.failf "golden does not parse: %s"
            (Pulse_ir.error_to_string e)
        | Ok ir ->
          check_true "round trip is the identity"
            (String.equal golden (Pulse_ir.to_string ir));
          check_true "device hash matches the registry"
            (ir.Pulse_ir.device_hash = Device.hash Device.lattice);
          (match Pulse_ir.verify ir with
          | Error msg -> Alcotest.failf "verify failed: %s" msg
          | Ok r ->
            check_int "model-backend IR has nothing to re-simulate" 0
              r.Pulse_ir.checked;
            check_int "every instruction skipped"
              (List.length ir.Pulse_ir.schedule)
              r.Pulse_ir.skipped));
    case "pulse IR: malformed documents fail with typed errors" (fun () ->
        let golden = lazy (read_file ir_golden_path) in
        let expect label doc pred =
          match Pulse_ir.of_string doc with
          | Ok _ -> Alcotest.failf "%s: parsed a malformed document" label
          | Error e ->
            check_true
              (label ^ " (got " ^ Pulse_ir.error_to_string e ^ ")")
              (pred e)
        in
        expect "truncated JSON" "{\"format\": \"paqoc-ir v1\""
          (function Pulse_ir.Bad_json _ -> true | _ -> false);
        expect "wrong format token" "{\"format\": \"paqoc-ir v0\"}"
          (function Pulse_ir.Bad_format _ -> true | _ -> false);
        expect "missing required field" "{\"format\": \"paqoc-ir v1\"}"
          (function Pulse_ir.Missing_field _ -> true | _ -> false);
        expect "mistyped backend"
          (replace_first ~needle:"\"backend\": \"model\""
             ~by:"\"backend\": \"abacus\"" (Lazy.force golden))
          (function Pulse_ir.Bad_field ("backend", _) -> true | _ -> false);
        expect "unknown provenance token"
          (replace_first ~needle:"\"provenance\": \"synthesized\""
             ~by:"\"provenance\": \"alchemy\"" (Lazy.force golden))
          (function Pulse_ir.Bad_instruction _ -> true | _ -> false))
  ]
