(* Seeded property tests over the pulse database's canonical forms and
   persistence. A self-contained [Random.State] PRNG (fixed seeds, no
   qcheck shrinking) drives every case, so a failure reproduces exactly
   from the printed seed. *)
open Test_util
module Gen = Paqoc_pulse.Generator

(* ------------------------------------------------------------------ *)
(* Random gate groups                                                  *)
(* ------------------------------------------------------------------ *)

let random_gate st n =
  let q () = Random.State.int st n in
  let angle () = Angle.const (Random.State.float st 6.28) in
  let distinct2 () =
    let a = q () in
    let b = (a + 1 + Random.State.int st (max 1 (n - 1))) mod n in
    (a, b)
  in
  match Random.State.int st 9 with
  | 0 -> Gate.app1 Gate.H (q ())
  | 1 -> Gate.app1 Gate.X (q ())
  | 2 -> Gate.app1 Gate.T (q ())
  | 3 -> Gate.app1 Gate.SX (q ())
  | 4 -> Gate.app1 (Gate.RZ (angle ())) (q ())
  | 5 -> Gate.app1 (Gate.RX (angle ())) (q ())
  | 6 ->
    let a, b = distinct2 () in
    Gate.app2 Gate.CX a b
  | 7 ->
    let a, b = distinct2 () in
    Gate.app2 Gate.CZ a b
  | _ ->
    let a, b = distinct2 () in
    Gate.app2 (Gate.CPhase (angle ())) a b

(* a random app list over qubits [0 .. n-1], n in 2..4, 1..6 gates *)
let random_apps st =
  let n = 2 + Random.State.int st 3 in
  let len = 1 + Random.State.int st 6 in
  (n, List.init len (fun _ -> random_gate st n))

(* a random injective renaming of 0..n-1 into a scattered global range *)
let random_renaming st n =
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let offset = Random.State.int st 20 in
  let stride = 1 + Random.State.int st 3 in
  Array.map (fun p -> offset + (stride * p)) perm

let rename perm (a : Gate.app) =
  { a with Gate.qubits = List.map (fun q -> perm.(q)) a.Gate.qubits }

let iterations = 200

(* ------------------------------------------------------------------ *)
(* Canonical-form properties                                           *)
(* ------------------------------------------------------------------ *)

let key_permutation_invariant () =
  let st = Random.State.make [| 0x5eed; 1 |] in
  for trial = 1 to iterations do
    let n, apps = random_apps st in
    let perm = random_renaming st n in
    let g, _ = Gen.group_of_apps apps in
    let g', _ = Gen.group_of_apps (List.map (rename perm) apps) in
    if not (String.equal (Gen.key g) (Gen.key g')) then
      Alcotest.failf "trial %d: key not invariant under renaming:@.%s@.%s"
        trial (Gen.key g) (Gen.key g');
    if not (String.equal (Gen.shape_signature g) (Gen.shape_signature g'))
    then
      Alcotest.failf "trial %d: shape signature not invariant" trial
  done

let first_appearance_relabeling () =
  let st = Random.State.make [| 0x5eed; 2 |] in
  for trial = 1 to iterations do
    let n, apps = random_apps st in
    let perm = random_renaming st n in
    let apps = List.map (rename perm) apps in
    let g, order = Gen.group_of_apps apps in
    (* wires named by the group, in order of first appearance *)
    let firsts = ref [] in
    List.iter
      (fun (a : Gate.app) ->
        List.iter
          (fun w -> if not (List.mem w !firsts) then firsts := w :: !firsts)
          a.Gate.qubits)
      g.Gen.gates;
    let firsts = List.rev !firsts in
    if not (firsts = List.init (List.length firsts) Fun.id) then
      Alcotest.failf "trial %d: local wires not in first-appearance order"
        trial;
    check_int "n_qubits counts distinct wires" (List.length firsts)
      g.Gen.n_qubits;
    check_int "order has one global per wire" g.Gen.n_qubits
      (List.length order);
    (* [order] maps local wire -> original qubit: renaming back must
       reproduce the input *)
    let back = Array.of_list order in
    let restored = List.map (rename back) g.Gen.gates in
    if restored <> apps then
      Alcotest.failf "trial %d: order does not invert the relabeling" trial
  done

(* ------------------------------------------------------------------ *)
(* Persistence round-trip                                              *)
(* ------------------------------------------------------------------ *)

let save_load_round_trip () =
  let st = Random.State.make [| 0x5eed; 3 |] in
  let t = Gen.model_default () in
  let groups =
    List.init 30 (fun _ -> fst (Gen.group_of_apps (snd (random_apps st))))
  in
  List.iter (fun g -> ignore (Gen.generate t g)) groups;
  let path = Filename.temp_file "paqoc_props" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gen.save_database t path;
      let t' = Gen.model_default () in
      Gen.load_database t' path;
      check_int "database_size survives" (Gen.database_size t)
        (Gen.database_size t');
      List.iter
        (fun g ->
          match (Gen.peek t g, Gen.peek t' g) with
          | Some o, Some o' ->
            check_float "latency survives" o.Gen.latency o'.Gen.latency;
            check_float "error survives" o.Gen.error o'.Gen.error;
            check_float "fidelity survives" o.Gen.fidelity o'.Gen.fidelity
          | None, None -> ()
          | Some _, None -> Alcotest.fail "entry lost in round-trip"
          | None, Some _ -> Alcotest.fail "entry invented in round-trip")
        groups;
      check_int "nothing regenerated on load" 0 (Gen.pulses_generated t');
      (* the sorted writer makes the file a canonical function of the
         contents: re-saving the loaded copy reproduces it byte for byte *)
      let path' = Filename.temp_file "paqoc_props" ".db" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path')
        (fun () ->
          Gen.save_database t' path';
          let read p =
            let ic = open_in_bin p in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          check_true "canonical bytes" (String.equal (read path) (read path'))))

(* ------------------------------------------------------------------ *)
(* The Algorithm-1 "free estimate" contract                            *)
(* ------------------------------------------------------------------ *)

let estimate_and_peek_are_free () =
  let st = Random.State.make [| 0x5eed; 4 |] in
  let t = Gen.model_default () in
  (* a populated database, so [peek] exercises both hit and miss paths *)
  List.iter
    (fun g -> ignore (Gen.generate t g))
    (List.init 10 (fun _ -> fst (Gen.group_of_apps (snd (random_apps st)))));
  let snapshot () =
    ( Gen.database_size t,
      Gen.total_seconds t,
      Gen.pulses_generated t,
      Gen.cache_hits t,
      Gen.seed_breakdown t )
  in
  let before = snapshot () in
  for _ = 1 to iterations do
    let g = fst (Gen.group_of_apps (snd (random_apps st))) in
    ignore (Gen.estimate_latency t g);
    ignore (Gen.avg_latency_for_size t g.Gen.n_qubits);
    ignore (Gen.peek t g)
  done;
  let after = snapshot () in
  check_true "estimate/peek mutate neither database nor accounting"
    (before = after)

let suite =
  [ case "key is invariant under qubit renaming (200 seeded trials)"
      key_permutation_invariant;
    case "group_of_apps relabels to first-appearance order (200 trials)"
      first_appearance_relabeling;
    case "save/load round-trip preserves entries and canonical bytes"
      save_load_round_trip;
    case "estimate_latency and peek never mutate state"
      estimate_and_peek_are_free
  ]
