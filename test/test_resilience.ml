(* Resilience: deterministic fault injection, retry policies, graceful
   degradation to decomposed-basis pulses, worker-crash recovery, and the
   provenance-carrying pulse database. Every failure path the generator
   can take is driven here on purpose — none of them fire organically. *)
open Test_util
module F = Paqoc_pulse.Faultin
module Gen = Paqoc_pulse.Generator
module DS = Paqoc_pulse.Duration_search
module Obs = Paqoc_obs.Obs
module Accqoc = Paqoc_accqoc.Accqoc

let cx_group () = fst (Gen.group_of_apps [ Gate.app2 Gate.CX 0 1 ])

(* a merged (non-table) group: synthesis always pays *)
let merged_group () =
  fst
    (Gen.group_of_apps
       [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 0 1 ])

let small_batch () =
  List.map
    (fun apps -> fst (Gen.group_of_apps apps))
    [ [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1 ];
      [ Gate.app2 Gate.CX 0 1; Gate.app2 Gate.CX 1 0 ];
      [ Gate.app1 Gate.X 0; Gate.app1 Gate.H 1; Gate.app2 Gate.CZ 0 1 ];
      [ Gate.app2 Gate.CX 0 1 ]
    ]

let save_to_string gen =
  let path = Filename.temp_file "paqoc_res" ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Gen.save_database gen path;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s)

let faultin_tests =
  [ case "nothing armed: fire is a no-op" (fun () ->
        F.reset ();
        check_true "does not fire" (not (F.fire F.Grape_diverge));
        check_int "no count kept unarmed" 0 (F.call_count F.Grape_diverge));
    case "first=n fires exactly n times" (fun () ->
        F.with_faults [ (F.Grape_diverge, F.First 2) ] (fun () ->
            let fired = List.init 4 (fun _ -> F.fire F.Grape_diverge) in
            check_true "pattern 1100"
              (fired = [ true; true; false; false ]);
            check_int "counted every call" 4 (F.call_count F.Grape_diverge)));
    case "every=n fires on multiples of n" (fun () ->
        F.with_faults [ (F.Timeout, F.Every 3) ] (fun () ->
            let fired = List.init 6 (fun _ -> F.fire F.Timeout) in
            check_true "pattern 001001"
              (fired = [ false; false; true; false; false; true ])));
    case "prob trigger is a pure function of seed and call" (fun () ->
        let run () =
          F.with_faults [ (F.Db_save_error, F.Prob (0.5, 42)) ] (fun () ->
              List.init 32 (fun _ -> F.fire F.Db_save_error))
        in
        let a = run () and b = run () in
        check_true "same seed, same pattern" (a = b);
        check_true "some calls fire" (List.mem true a);
        check_true "some calls pass" (List.mem false a));
    case "configure replaces, reset disarms" (fun () ->
        F.configure [ (F.Grape_diverge, F.Always) ];
        check_true "armed" (F.fire F.Grape_diverge);
        F.configure [ (F.Timeout, F.Always) ];
        check_true "previous point disarmed" (not (F.fire F.Grape_diverge));
        check_true "new point armed" (F.fire F.Timeout);
        F.reset ();
        check_true "disarmed" (not (F.fire F.Timeout));
        check_int "nothing active" 0 (List.length (F.active ())));
    case "with_faults restores the previous configuration" (fun () ->
        F.configure [ (F.Timeout, F.Always) ];
        F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
            check_true "inner armed" (F.fire F.Grape_diverge);
            check_true "outer masked" (not (F.fire F.Timeout)));
        check_true "outer restored" (F.fire F.Timeout);
        F.reset ());
    case "spec parsing round-trips and rejects junk" (fun () ->
        (match F.parse_spec "grape-diverge:first=2,timeout" with
        | Ok pts ->
          check_int "two points" 2 (List.length pts);
          (match F.parse_spec (F.spec_to_string pts) with
          | Ok pts' -> check_true "round-trips" (pts = pts')
          | Error m -> Alcotest.failf "re-parse failed: %s" m)
        | Error m -> Alcotest.failf "parse failed: %s" m);
        (match F.parse_spec "db-save-error:prob=0.25:seed=7" with
        | Ok [ (F.Db_save_error, F.Prob (p, 7)) ] ->
          check_float "probability" 0.25 p
        | _ -> Alcotest.fail "prob spec mis-parsed");
        List.iter
          (fun bad ->
            match F.parse_spec bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad)
          [ "bogus-point"; "grape-diverge:prob=2.0"; "timeout:first=x";
            "timeout:first=0"; ""; "grape-diverge:every=-1" ])
  ]

let retry_tests =
  [ case "create rejects max_attempts < 1" (fun () ->
        check_true "raises"
          (try
             ignore
               (Gen.model_default
                  ~retry:{ Gen.default_retry with Gen.max_attempts = 0 }
                  ());
             false
           with Invalid_argument _ -> true));
    case "transient fault: retry succeeds, no fallback" (fun () ->
        (* the first attempt diverges, the retry sails through *)
        let clean =
          let gen = Gen.model_default () in
          Gen.generate gen (merged_group ())
        in
        let gen = Gen.model_default () in
        let o =
          F.with_faults [ (F.Grape_diverge, F.First 1) ] (fun () ->
              Gen.generate gen (merged_group ()))
        in
        check_true "synthesized" (o.Gen.provenance = Gen.Synthesized);
        check_int "two attempts" 2 o.Gen.attempts;
        check_int "no fallback" 0 (Gen.fallbacks gen);
        check_float "same latency as a clean run" clean.Gen.latency
          o.Gen.latency;
        check_true "wasted attempt is charged"
          (o.Gen.gen_seconds > clean.Gen.gen_seconds));
    case "persistent fault: degrades to decomposed-basis fallback" (fun () ->
        let gen =
          Gen.model_default
            ~retry:{ Gen.default_retry with Gen.max_attempts = 2 } ()
        in
        let o =
          F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
              Gen.generate gen (merged_group ()))
        in
        check_true "fallback provenance" (o.Gen.provenance = Gen.Fallback);
        check_int "spent every attempt" 2 o.Gen.attempts;
        check_true "no pulse recorded" (o.Gen.pulse = None);
        check_true "schedule still priced" (o.Gen.latency > 0.0);
        check_int "counted" 1 (Gen.fallbacks gen);
        (* the fallback forfeits the merged pulse's latency win *)
        let clean = Gen.generate (Gen.model_default ()) (merged_group ()) in
        check_true
          (Printf.sprintf "penalty surfaced: %.0f > %.0f" o.Gen.latency
             clean.Gen.latency)
          (o.Gen.latency > clean.Gen.latency));
    case "max_attempts = 1 disables retries" (fun () ->
        let gen =
          Gen.model_default
            ~retry:{ Gen.default_retry with Gen.max_attempts = 1 } ()
        in
        let o =
          F.with_faults [ (F.Grape_diverge, F.First 1) ] (fun () ->
              Gen.generate gen (merged_group ()))
        in
        check_true "straight to fallback" (o.Gen.provenance = Gen.Fallback);
        check_int "one attempt" 1 o.Gen.attempts);
    case "task deadline stops retrying" (fun () ->
        let gen =
          Gen.model_default
            ~retry:
              { Gen.default_retry with
                Gen.max_attempts = 5;
                Gen.task_seconds = Some 0.0
              }
            ()
        in
        let o =
          F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
              Gen.generate gen (merged_group ()))
        in
        check_true "fallback" (o.Gen.provenance = Gen.Fallback);
        check_int "no retries past the deadline" 1 o.Gen.attempts);
    case "fallback counter feeds the compile report and metrics" (fun () ->
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.enable ();
            let gen = Gen.model_default () in
            let c =
              Circuit.make ~n_qubits:3
                [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1;
                  Gate.app2 Gate.CX 1 2; Gate.app2 Gate.CX 0 1 ]
            in
            let r =
              F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
                  Paqoc.compile gen c)
            in
            check_true "compile still succeeds" (r.Paqoc.latency > 0.0);
            check_true "esp stays a probability"
              (r.Paqoc.esp > 0.0 && r.Paqoc.esp <= 1.0);
            check_true "report counts fallbacks" (r.Paqoc.fallbacks > 0);
            check_int "report matches the generator" (Gen.fallbacks gen)
              r.Paqoc.fallbacks;
            check_int "metrics counter agrees" (Gen.fallbacks gen)
              (Obs.counter_value "generator.fallback");
            check_true "injection firings were counted"
              (Obs.counter_value "faultin.grape-diverge" > 0)));
    case "accqoc report carries fallbacks too" (fun () ->
        let gen = Gen.model_default () in
        let c =
          Circuit.make ~n_qubits:2
            [ Gate.app1 Gate.H 0; Gate.app2 Gate.CX 0 1;
              Gate.app2 Gate.CX 0 1 ]
        in
        let r =
          F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
              Accqoc.compile gen c)
        in
        check_true "still compiles" (r.Accqoc.latency > 0.0);
        check_true "fallbacks surfaced" (r.Accqoc.fallbacks > 0));
    slow_case "qoc backend: injected divergence degrades, typed" (fun () ->
        (* the injected GRAPE result short-circuits optimisation, so the
           whole bracket fails fast with Injected_fault and the task lands
           on the fallback *)
        let gen = Gen.qoc_default () in
        let o =
          F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
              Gen.generate gen (cx_group ()))
        in
        check_true "fallback" (o.Gen.provenance = Gen.Fallback);
        check_true "no pulse" (o.Gen.pulse = None);
        check_int "all attempts spent"
          (Gen.default_retry.Gen.max_attempts) o.Gen.attempts;
        check_true "priced from the calibration table" (o.Gen.latency > 0.0))
  ]

let pool_tests =
  [ case "worker crash recovers with identical results" (fun () ->
        let groups = small_batch () in
        let clean_gen = Gen.model_default () in
        let clean = Gen.generate_batch ~jobs:1 clean_gen groups in
        let crash_gen = Gen.model_default () in
        let crashed =
          F.with_faults [ (F.Pool_task_crash, F.Always) ] (fun () ->
              Gen.generate_batch ~jobs:4 crash_gen groups)
        in
        check_int "same count" (List.length clean) (List.length crashed);
        List.iter2
          (fun (a : Gen.outcome) (b : Gen.outcome) ->
            check_float "latency" a.Gen.latency b.Gen.latency;
            check_true "provenance" (a.Gen.provenance = b.Gen.provenance))
          clean crashed;
        check_true "databases byte-identical"
          (String.equal (save_to_string clean_gen) (save_to_string crash_gen)));
    case "injected faults stay jobs-independent" (fun () ->
        (* Always triggers are the documented deterministic-under-jobs
           contract: serial and 4-way runs must commit identical bytes *)
        let run jobs =
          let gen = Gen.model_default () in
          ignore
            (F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
                 Gen.generate_batch ~jobs gen (small_batch ())));
          save_to_string gen
        in
        check_true "byte-identical databases"
          (String.equal (run 1) (run 4)))
  ]

let db_tests =
  [ case "fallback provenance survives a save/load round trip" (fun () ->
        let gen = Gen.model_default () in
        let g = merged_group () in
        ignore
          (F.with_faults [ (F.Grape_diverge, F.Always) ] (fun () ->
               Gen.generate gen g));
        let bytes = save_to_string gen in
        check_true "v2 header"
          (String.length bytes >= 17
          && String.equal (String.sub bytes 0 17) "paqoc-pulse-db v2");
        let path = Filename.temp_file "paqoc_res" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Gen.save_database gen path;
            let gen2 = Gen.model_default () in
            Gen.load_database gen2 path;
            check_int "same size" (Gen.database_size gen)
              (Gen.database_size gen2);
            match Gen.peek gen2 g with
            | Some o ->
              check_true "provenance preserved"
                (o.Gen.provenance = Gen.Fallback)
            | None -> Alcotest.fail "entry lost in round trip"));
    case "v1 database files still load" (fun () ->
        let path = Filename.temp_file "paqoc_res" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc
              "paqoc-pulse-db v1\nK 96 0.001 0.999 2;cx@0,1\nS 2;cx@0,1\n";
            close_out oc;
            let gen = Gen.model_default () in
            Gen.load_database gen path;
            check_int "one entry" 1 (Gen.database_size gen);
            match Gen.peek gen (cx_group ()) with
            | Some o ->
              check_true "v1 entries read as synthesized"
                (o.Gen.provenance = Gen.Synthesized)
            | None -> Alcotest.fail "v1 entry not found"));
    case "injected save fault fails loudly, leaves nothing behind" (fun () ->
        let gen = Gen.model_default () in
        ignore (Gen.generate gen (cx_group ()));
        let path = Filename.temp_file "paqoc_res" ".db" in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
          (fun () ->
            Gen.save_database gen path;
            let ic = open_in_bin path in
            let before = really_input_string ic (in_channel_length ic) in
            close_in ic;
            check_true "raises Failure"
              (F.with_faults [ (F.Db_save_error, F.Always) ] (fun () ->
                   try
                     Gen.save_database gen path;
                     false
                   with Failure msg ->
                     check_true "names the injection"
                       (String.length msg > 0);
                     true));
            check_true "no temporary left"
              (not (Sys.file_exists (path ^ ".tmp")));
            let ic = open_in_bin path in
            let after = really_input_string ic (in_channel_length ic) in
            close_in ic;
            check_true "existing database untouched"
              (String.equal before after)))
  ]

let suite = faultin_tests @ retry_tests @ pool_tests @ db_tests
